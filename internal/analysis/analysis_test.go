package analysis

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/hitlist"
)

func mkDataset(name string, addrs ...string) *hitlist.Dataset {
	d := hitlist.NewDataset(name)
	for _, s := range addrs {
		d.Add(addr.MustParse(s))
	}
	return d
}

func TestEntropyDistribution(t *testing.T) {
	d := mkDataset("d",
		"2001:db8::1",                  // low entropy
		"2001:db8::123:4567:89ab:cdef", // high-ish
		"2001:db8::dead:beef:1234:5678",
	)
	dist := EntropyDistribution(d)
	if dist.N() != 3 {
		t.Fatalf("N: %d", dist.N())
	}
	if dist.Min() > 0.25 {
		t.Errorf("::1 should contribute near-zero entropy, min %v", dist.Min())
	}
	if dist.Max() < 0.7 {
		t.Errorf("random IIDs should reach high entropy, max %v", dist.Max())
	}
}

func TestEntropyDistributionOfIntersection(t *testing.T) {
	a := mkDataset("a", "2001:db8::1", "2001:db8::2", "2001:db8::dead:beef:1:2")
	b := mkDataset("b", "2001:db8::2", "2001:db8::dead:beef:1:2", "2001:db8::99")
	dist := EntropyDistributionOfIntersection(a, b)
	if dist.N() != 2 {
		t.Fatalf("intersection N: %d", dist.N())
	}
	// Symmetric regardless of argument order.
	dist2 := EntropyDistributionOfIntersection(b, a)
	if dist2.N() != 2 {
		t.Fatalf("reverse N: %d", dist2.N())
	}
}

func TestComputeFigure1(t *testing.T) {
	ntp := mkDataset("ntp", "2001:db8::aaaa:bbbb:cccc:dddd", "2001:db8::1")
	hl := mkDataset("hl", "2001:db8::1", "2001:db8::2")
	caida := mkDataset("caida", "2001:db8::1")
	f := ComputeFigure1(ntp, hl, caida)
	if f.NTP.N() != 2 || f.Hitlist.N() != 2 || f.CAIDA.N() != 1 {
		t.Error("curve sizes wrong")
	}
	if f.NTPxHitlist.N() != 1 || f.NTPxCAIDA.N() != 1 {
		t.Error("intersection sizes wrong")
	}
}

func testDB(t *testing.T) *asdb.DB {
	t.Helper()
	db := asdb.NewDB()
	for i, spec := range []struct {
		asn  asdb.ASN
		name string
		ty   asdb.ASType
		pfx  string
	}{
		{100, "Alpha Mobile", asdb.TypePhoneProvider, "2400:100::/32"},
		{200, "Beta ISP", asdb.TypeISP, "2400:200::/32"},
		{300, "Gamma Host", asdb.TypeHosting, "2400:300::/32"},
	} {
		if err := db.AddAS(asdb.AS{
			ASN: spec.asn, Name: spec.name, Type: spec.ty,
			Prefixes: []addr.Prefix{addr.MustParsePrefix(spec.pfx)},
		}); err != nil {
			t.Fatalf("AS %d: %v", i, err)
		}
	}
	return db
}

func TestTopASEntropy(t *testing.T) {
	db := testDB(t)
	d := hitlist.NewDataset("d")
	// 5 addresses in AS100, 3 in AS200, 1 in AS300, 1 unrouted.
	for i := 0; i < 5; i++ {
		d.Add(addr.MustParse(fmt.Sprintf("2400:100::%d:abcd:ef12:3456", i+1)))
	}
	for i := 0; i < 3; i++ {
		d.Add(addr.MustParse(fmt.Sprintf("2400:200::%d", i+1)))
	}
	d.Add(addr.MustParse("2400:300::1"))
	d.Add(addr.MustParse("3fff::1"))

	top := TopASEntropy(d, db, 2)
	if len(top) != 2 {
		t.Fatalf("top: %d", len(top))
	}
	if top[0].ASN != 100 || top[0].Count != 5 {
		t.Errorf("top[0]: %+v", top[0])
	}
	if top[1].ASN != 200 || top[1].Count != 3 {
		t.Errorf("top[1]: %+v", top[1])
	}
	if top[0].Name != "Alpha Mobile" {
		t.Errorf("name: %q", top[0].Name)
	}
	// AS200's operator addresses are low entropy; AS100's are high.
	if top[0].Dist.Median() <= top[1].Dist.Median() {
		t.Error("entropy ordering wrong")
	}
	// topN=0 returns all ASes.
	if got := TopASEntropy(d, db, 0); len(got) != 3 {
		t.Errorf("all ASes: %d", len(got))
	}
}

func TestASTypeShare(t *testing.T) {
	db := testDB(t)
	d := mkDataset("d",
		"2400:100::1", "2400:100::2", // phone
		"2400:200::1", // isp
		"3fff::1",     // unrouted, excluded
	)
	share := ASTypeShare(d, db)
	if got := share[asdb.TypePhoneProvider]; got < 0.66 || got > 0.67 {
		t.Errorf("phone share: %v", got)
	}
	if got := share[asdb.TypeISP]; got < 0.33 || got > 0.34 {
		t.Errorf("isp share: %v", got)
	}
	if share[asdb.TypeHosting] != 0 {
		t.Errorf("hosting share: %v", share[asdb.TypeHosting])
	}
	if got := ASTypeShare(hitlist.NewDataset("empty"), db); len(got) != 0 {
		t.Errorf("empty dataset share: %v", got)
	}
}

func obsAt(c *collector.Collector, a string, at time.Time) {
	c.Observe(addr.MustParse(a), at, 0)
}

func TestComputeFigure2a(t *testing.T) {
	c := collector.New()
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	// 6 addresses seen once, 2 seen across a week+, 1 across 40 days, 1 across 200 days.
	for i := 0; i < 6; i++ {
		obsAt(c, fmt.Sprintf("2001:db8::%d", i+1), t0)
	}
	obsAt(c, "2001:db8::100", t0)
	obsAt(c, "2001:db8::100", t0.Add(8*24*time.Hour))
	obsAt(c, "2001:db8::101", t0)
	obsAt(c, "2001:db8::101", t0.Add(9*24*time.Hour))
	obsAt(c, "2001:db8::102", t0)
	obsAt(c, "2001:db8::102", t0.Add(40*24*time.Hour))
	obsAt(c, "2001:db8::103", t0)
	obsAt(c, "2001:db8::103", t0.Add(200*24*time.Hour))

	f := ComputeFigure2a(c)
	if f.ObservedOnce != 0.6 {
		t.Errorf("observed once: %v want 0.6", f.ObservedOnce)
	}
	if f.WeekOrLonger != 0.4 {
		t.Errorf("week+: %v want 0.4", f.WeekOrLonger)
	}
	if f.MonthOrLonger < 0.199 || f.MonthOrLonger > 0.201 {
		t.Errorf("month+: %v want 0.2", f.MonthOrLonger)
	}
	if f.SixMonthsOrLonger < 0.099 || f.SixMonthsOrLonger > 0.101 {
		t.Errorf("6mo+: %v want 0.1", f.SixMonthsOrLonger)
	}
	if len(f.CCDF) != len(LifetimeMarks) {
		t.Errorf("CCDF marks: %d", len(f.CCDF))
	}
	// CCDF must be non-increasing across the marks.
	for i := 1; i < len(f.CCDF); i++ {
		if f.CCDF[i].Y > f.CCDF[i-1].Y {
			t.Error("CCDF not monotone")
		}
	}
}

func TestComputeFigure2b(t *testing.T) {
	c := collector.New()
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	// Low-entropy IID persisting a month; high-entropy IID seen once.
	obsAt(c, "2001:db8::1", t0)
	obsAt(c, "2001:db8::1", t0.Add(30*24*time.Hour))
	obsAt(c, "2001:db8::abcd:ef01:2345:6789", t0)

	f := ComputeFigure2b(c)
	low := f.ByClass[addr.LowEntropy]
	if low == nil || low.N() != 1 {
		t.Fatalf("low class: %+v", low)
	}
	if f.WeekOrLonger[addr.LowEntropy] != 1 {
		t.Errorf("low week+: %v", f.WeekOrLonger[addr.LowEntropy])
	}
	if f.ObservedOnce[addr.HighEntropy] != 1 {
		t.Errorf("high observed-once: %v", f.ObservedOnce[addr.HighEntropy])
	}
}

func TestCategorizeDataset(t *testing.T) {
	db := testDB(t)
	d := hitlist.NewDataset("d")
	d.Add(addr.MustParse("2400:200::"))                    // zeroes? :: IID = 0 -> Zeroes
	d.Add(addr.MustParse("2400:200::1"))                   // low byte
	d.Add(addr.MustParse("2400:200::1:0"))                 // low 2 bytes? 0x10000 -> no: 3 bytes
	d.Add(addr.MustParse("2400:200::abc"))                 // low 2 bytes? 0xabc -> yes (2 bytes)
	d.Add(addr.MustParse("2400:100::1234:5678:9abc:def1")) // high entropy
	b := CategorizeDataset(d, db)
	if b.Total != 5 {
		t.Fatalf("total: %d", b.Total)
	}
	if b.Counts[addr.CatZeroes] != 1 {
		t.Errorf("zeroes: %d", b.Counts[addr.CatZeroes])
	}
	if b.Counts[addr.CatLowByte] != 1 {
		t.Errorf("low byte: %d", b.Counts[addr.CatLowByte])
	}
	if b.Counts[addr.CatLow2Bytes] != 1 {
		t.Errorf("low 2 bytes: %d", b.Counts[addr.CatLow2Bytes])
	}
	if b.Counts[addr.CatHighEntropy] != 1 {
		t.Errorf("high entropy: %d", b.Counts[addr.CatHighEntropy])
	}
	var fracSum float64
	for _, f := range b.Fractions {
		fracSum += f
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Errorf("fractions sum: %v", fracSum)
	}
}

func TestCategorizeV4Corroboration(t *testing.T) {
	db := testDB(t)
	d := hitlist.NewDataset("d")
	// 10 v4-hex embedded addresses in AS200 (enough to pass the scaled
	// rule: floor of 5 instances, >=10% of the AS).
	for i := 0; i < 10; i++ {
		d.Add(addr.FromParts(0x2400_0200_0000_0000, uint64(0xc0a80000+i)))
	}
	b := CategorizeDataset(d, db)
	if b.Counts[addr.CatV4Mapped] != 10 {
		t.Errorf("v4-mapped: %d want 10 (%v)", b.Counts[addr.CatV4Mapped], b.Counts)
	}

	// A single candidate in a big AS must NOT be accepted.
	d2 := hitlist.NewDataset("d2")
	d2.Add(addr.FromParts(0x2400_0200_0000_0000, 0xc0a80001))
	for i := 0; i < 50; i++ {
		d2.Add(addr.FromParts(0x2400_0200_0000_0000, uint64(0x123456789a000000)+uint64(i)<<8|0xb1))
	}
	b2 := CategorizeDataset(d2, db)
	if b2.Counts[addr.CatV4Mapped] != 0 {
		t.Errorf("lone candidate accepted: %v", b2.Counts)
	}
}

func TestComputeFigure5(t *testing.T) {
	db := testDB(t)
	ntp := mkDataset("ntp", "2400:100::1234:5678:9abc:def1")
	hl := mkDataset("hl", "2400:200::1")
	f := ComputeFigure5(ntp, hl, db)
	if f.NTP.Counts[addr.CatHighEntropy] != 1 {
		t.Error("NTP day breakdown wrong")
	}
	if f.Hitlist.Counts[addr.CatLowByte] != 1 {
		t.Error("Hitlist day breakdown wrong")
	}
}

func TestTable1Render(t *testing.T) {
	db := testDB(t)
	ntp := mkDataset("NTP", "2400:100::a:b:c:d", "2400:100::1:2:3:4", "2400:200::5")
	hl := mkDataset("Hitlist", "2400:200::5", "2400:200::1")
	caida := mkDataset("CAIDA", "2400:300::1")
	t1 := ComputeTable1(ntp, hl, caida, db)
	if t1.NTP.Addrs != 3 || t1.Hitlist.CommonAddrs != 1 || t1.CAIDA.CommonAddrs != 0 {
		t.Errorf("table: %+v", t1)
	}
	out := t1.Render()
	for _, want := range []string{"Table 1", "NTP", "Hitlist", "CAIDA", "Avg/48"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
