package analysis

import (
	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/hitlist"
)

// CategoryBreakdown is one dataset's Figure 5 bar set: the fraction of
// addresses in each of the seven categories.
type CategoryBreakdown struct {
	Counts    [addr.NumCategories]int
	Fractions [addr.NumCategories]float64
	Total     int
}

// v4Rule is the paper's two-rule filter for accepting IPv4-embedded
// addresses: a candidate only counts when its AS has at least MinInstances
// candidates and they make up at least MinShare of the AS's addresses.
type v4Rule struct {
	MinInstances int
	MinShare     float64
}

// defaultV4Rule uses the paper's thresholds (>=100 instances, >=10%).
var defaultV4Rule = v4Rule{MinInstances: 100, MinShare: 0.10}

// CategorizeDataset computes the Figure 5 breakdown for a dataset. The
// v4-mapped category applies the paper's AS-corroboration rule, scaled:
// minInstances is lowered proportionally for small (simulated) datasets,
// with a floor of 5, because the absolute threshold of 100 assumes a
// billions-scale corpus.
func CategorizeDataset(d *hitlist.Dataset, db *asdb.DB) *CategoryBreakdown {
	rule := defaultV4Rule
	if d.Len() < 1_000_000 {
		rule.MinInstances = d.Len() / 10_000
		if rule.MinInstances < 5 {
			rule.MinInstances = 5
		}
	}
	return categorize(d, db, rule)
}

func categorize(d *hitlist.Dataset, db *asdb.DB, rule v4Rule) *CategoryBreakdown {
	// Pass 1: count per-AS totals and per-AS v4-candidate counts. A
	// candidate must decode to an IPv4 address under one of the three
	// encodings; the AS-consistency requirement ("in the same AS as the
	// IPv6 address they are embedded in") is modelled as the candidate
	// decoding successfully for a routed address, since the simulator has
	// no parallel IPv4 topology. The two-rule volume filter is what kills
	// random-IID false positives either way.
	totalByAS := make(map[asdb.ASN]int)
	candByAS := make(map[asdb.ASN]int)
	d.Each(func(a addr.Addr) bool {
		asn, ok := db.OriginASN(a)
		if !ok {
			return true
		}
		totalByAS[asn]++
		if len(a.IID().V4AnyCandidate()) > 0 {
			candByAS[asn]++
		}
		return true
	})
	accepted := make(map[asdb.ASN]bool)
	for asn, n := range candByAS {
		if n >= rule.MinInstances && float64(n) >= rule.MinShare*float64(totalByAS[asn]) {
			accepted[asn] = true
		}
	}

	// Pass 2: categorize.
	out := &CategoryBreakdown{}
	d.Each(func(a addr.Addr) bool {
		iid := a.IID()
		confirmed := false
		if len(iid.V4AnyCandidate()) > 0 {
			if asn, ok := db.OriginASN(a); ok && accepted[asn] {
				confirmed = true
			}
		}
		out.Counts[iid.Categorize(confirmed)]++
		out.Total++
		return true
	})
	if out.Total > 0 {
		for i, n := range out.Counts {
			out.Fractions[i] = float64(n) / float64(out.Total)
		}
	}
	return out
}

// Figure5 pairs the NTP and Hitlist single-day breakdowns.
type Figure5 struct {
	NTP, Hitlist *CategoryBreakdown
}

// ComputeFigure5 builds Figure 5 from the two single-day datasets.
func ComputeFigure5(ntpDay, hitlistDay *hitlist.Dataset, db *asdb.DB) *Figure5 {
	return &Figure5{
		NTP:     CategorizeDataset(ntpDay, db),
		Hitlist: CategorizeDataset(hitlistDay, db),
	}
}
