package analysis

import (
	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/fold"
	"hitlist6/internal/hitlist"
)

// CategoryBreakdown is one dataset's Figure 5 bar set: the fraction of
// addresses in each of the seven categories.
type CategoryBreakdown struct {
	Counts    [addr.NumCategories]int
	Fractions [addr.NumCategories]float64
	Total     int
}

// v4Rule is the paper's two-rule filter for accepting IPv4-embedded
// addresses: a candidate only counts when its AS has at least MinInstances
// candidates and they make up at least MinShare of the AS's addresses.
type v4Rule struct {
	MinInstances int
	MinShare     float64
}

// defaultV4Rule uses the paper's thresholds (>=100 instances, >=10%).
var defaultV4Rule = v4Rule{MinInstances: 100, MinShare: 0.10}

// scaledRule lowers the paper's absolute MinInstances threshold
// proportionally for small (simulated) datasets, with a floor of 5,
// because the threshold of 100 assumes a billions-scale corpus.
func scaledRule(n int) v4Rule {
	rule := defaultV4Rule
	if n < 1_000_000 {
		rule.MinInstances = n / 10_000
		if rule.MinInstances < 5 {
			rule.MinInstances = 5
		}
	}
	return rule
}

// CategorizeDataset computes the Figure 5 breakdown for a dataset.
func CategorizeDataset(d *hitlist.Dataset, db *asdb.DB) *CategoryBreakdown {
	return CategorizeSidecar(BuildSidecar(d, db, 1), 1)
}

// CategorizeSidecar computes the Figure 5 breakdown from a sidecar's
// columns as two parallel folds.
func CategorizeSidecar(sc *Sidecar, workers int) *CategoryBreakdown {
	return categorizeSidecar(sc, scaledRule(sc.Len()), workers)
}

// v4Tally is the per-AS (total, candidate) pair of categorize's first
// pass.
type v4Tally struct{ total, cand int }

func categorizeSidecar(sc *Sidecar, rule v4Rule, workers int) *CategoryBreakdown {
	view := sc.D.View()

	// Pass 1: per-AS totals and v4-candidate counts. A candidate must
	// decode to an IPv4 address under one of the three encodings; the
	// AS-consistency requirement ("in the same AS as the IPv6 address
	// they are embedded in") is modelled as the candidate decoding
	// successfully for a routed address, since the simulator has no
	// parallel IPv4 topology. The two-rule volume filter is what kills
	// random-IID false positives either way.
	byAS := fold.Map(sc.Len(), workers,
		func(lo, hi int) map[asdb.ASN]v4Tally {
			part := make(map[asdb.ASN]v4Tally)
			for i := lo; i < hi; i++ {
				if !sc.HasAS[i] {
					continue
				}
				t := part[sc.ASN[i]]
				t.total++
				if sc.V4Cand[i] {
					t.cand++
				}
				part[sc.ASN[i]] = t
			}
			return part
		},
		func(dst, src map[asdb.ASN]v4Tally) map[asdb.ASN]v4Tally {
			//lint:ordered per-key tally sums commute; the merged map carries no order
			for asn, t := range src {
				d := dst[asn]
				d.total += t.total
				d.cand += t.cand
				dst[asn] = d
			}
			return dst
		})
	accepted := make(map[asdb.ASN]bool)
	//lint:ordered map-to-set projection; membership is order-independent
	for asn, t := range byAS {
		if t.cand >= rule.MinInstances && float64(t.cand) >= rule.MinShare*float64(t.total) {
			accepted[asn] = true
		}
	}

	// Pass 2: categorize. The unconfirmed category is precomputed in the
	// sidecar; only the (rare) accepted v4 candidates re-categorize with
	// the embedding confirmed.
	out := fold.Map(sc.Len(), workers,
		func(lo, hi int) *CategoryBreakdown {
			part := &CategoryBreakdown{}
			for i := lo; i < hi; i++ {
				cat := sc.Cat[i]
				if sc.V4Cand[i] && sc.HasAS[i] && accepted[sc.ASN[i]] {
					cat = view[i].IID().Categorize(true)
				}
				part.Counts[cat]++
				part.Total++
			}
			return part
		},
		func(dst, src *CategoryBreakdown) *CategoryBreakdown {
			if dst == nil {
				return src
			}
			if src != nil {
				for i, n := range src.Counts {
					dst.Counts[i] += n
				}
				dst.Total += src.Total
			}
			return dst
		})
	if out == nil {
		out = &CategoryBreakdown{}
	}
	if out.Total > 0 {
		for i, n := range out.Counts {
			out.Fractions[i] = float64(n) / float64(out.Total)
		}
	}
	return out
}

// Figure5 pairs the NTP and Hitlist single-day breakdowns.
type Figure5 struct {
	NTP, Hitlist *CategoryBreakdown
}

// ComputeFigure5 builds Figure 5 from the two single-day datasets.
func ComputeFigure5(ntpDay, hitlistDay *hitlist.Dataset, db *asdb.DB) *Figure5 {
	return ComputeFigure5Sidecar(
		BuildSidecar(ntpDay, db, 1),
		BuildSidecar(hitlistDay, db, 1), 1)
}

// ComputeFigure5Sidecar builds Figure 5 from prebuilt sidecars, the two
// breakdowns in parallel.
func ComputeFigure5Sidecar(ntpDay, hitlistDay *Sidecar, workers int) *Figure5 {
	f := &Figure5{}
	fold.Each(workers,
		func() { f.NTP = CategorizeSidecar(ntpDay, workers) },
		func() { f.Hitlist = CategorizeSidecar(hitlistDay, workers) },
	)
	return f
}
