package collector

// Delta-checkpoint bookkeeping: the collector remembers, per slab, how
// many records existed at the last checkpoint (the clean watermark) and
// which fixed-size blocks below that watermark have been mutated in
// place since. A delta snapshot then carries exactly the dirty blocks
// plus everything past the watermarks — O(dirty + new) instead of
// O(corpus) — and the write paths pay one bounds check and (rarely) one
// bitset store per record mutation.
//
// Blocks are deltaBlockSize records regardless of the slabs' chunk
// geometry: fine enough that a lightly-dirtied corpus deltas at a small
// fraction of a full snapshot, coarse enough that the bitsets cost one
// bit per 4096 records.
const (
	deltaBlockBits = 12
	deltaBlockSize = 1 << deltaBlockBits
	deltaBlockMask = deltaBlockSize - 1
)

// dirtySet tracks dirtied block indices as a growable bitset.
type dirtySet struct {
	bits []uint64
}

func (d *dirtySet) mark(block uint32) {
	w := int(block >> 6)
	for w >= len(d.bits) {
		d.bits = append(d.bits, 0)
	}
	d.bits[w] |= 1 << (block & 63)
}

func (d *dirtySet) has(block uint32) bool {
	w := int(block >> 6)
	return w < len(d.bits) && d.bits[w]&(1<<(block&63)) != 0
}

func (d *dirtySet) reset() {
	for i := range d.bits {
		d.bits[i] = 0
	}
}

func (d *dirtySet) bytes() uint64 { return uint64(cap(d.bits)) * 8 }

// ckptState is the collector's checkpoint watermark: what the last
// durable artifact covered, and what has been dirtied since.
type ckptState struct {
	// seq is the checkpoint chain position: 0 for a full snapshot, k for
	// the k'th delta on top of it. based reports whether any checkpoint
	// baseline exists at all — a fresh collector has none, and deltas
	// cannot be taken against nothing.
	seq   uint64
	based bool
	// addrBase/iidBase/spanBase are the slab counts at the last
	// checkpoint; records at or past them are new and need no dirty
	// marking (the delta carries every block touching them anyway).
	addrBase, iidBase, spanBase uint32
	// baseTotal is the observation count at the last checkpoint; deltas
	// embed it so a chain applied to the wrong base fails fast.
	baseTotal uint64

	dirtyAddr, dirtyIID, dirtySpan dirtySet
}

// markAddrDirty records an in-place mutation of address record i.
func (c *Collector) markAddrDirty(i uint32) {
	if i < c.ckpt.addrBase {
		c.ckpt.dirtyAddr.mark(i >> deltaBlockBits)
	}
}

// markIIDDirty records an in-place mutation of promoted IID record i.
func (c *Collector) markIIDDirty(i uint32) {
	if i < c.ckpt.iidBase {
		c.ckpt.dirtyIID.mark(i >> deltaBlockBits)
	}
}

// markSpanDirty records an in-place mutation of span node i.
func (c *Collector) markSpanDirty(i uint32) {
	if i < c.ckpt.spanBase {
		c.ckpt.dirtySpan.mark(i >> deltaBlockBits)
	}
}

// markClean resets the watermark to the current slab counts: everything
// resident is now covered by the checkpoint at seq.
func (c *Collector) markClean(seq uint64) {
	c.ckpt.seq = seq
	c.ckpt.based = true
	c.ckpt.addrBase = c.addrRecs.n
	c.ckpt.iidBase = c.iidRecs.n
	c.ckpt.spanBase = c.spans.n
	c.ckpt.baseTotal = c.total
	c.ckpt.dirtyAddr.reset()
	c.ckpt.dirtyIID.reset()
	c.ckpt.dirtySpan.reset()
}

// CheckpointSeq returns the collector's checkpoint chain position (0 =
// full snapshot, k = k deltas on top) and whether any checkpoint
// baseline exists. A fresh collector reports (0, false) until its first
// full checkpoint or restore.
func (c *Collector) CheckpointSeq() (uint64, bool) { return c.ckpt.seq, c.ckpt.based }

// MarkCheckpointedFull records that a full snapshot of the current
// state was durably written: the chain restarts at sequence 0 and all
// dirty tracking resets. Callers must guarantee no writes ran between
// the Snapshot call and this one (the Store checkpoint methods hold the
// write lock across both).
func (c *Collector) MarkCheckpointedFull() { c.markClean(0) }

// MarkCheckpointedDelta records that the delta SnapshotDelta just wrote
// was durably stored: the watermark advances and the chain sequence
// increments. Same no-intervening-writes contract as
// MarkCheckpointedFull.
func (c *Collector) MarkCheckpointedDelta() { c.markClean(c.ckpt.seq + 1) }

// deltaBlock is one block's record range [lo, hi) within a slab.
type deltaBlock struct {
	idx    uint32
	lo, hi uint32
}

// deltaBlocks lists the blocks a delta must carry for one slab: every
// dirty block below the watermark plus every block containing records
// past it. Blocks come out in ascending index order with hi ==
// min(n, (idx+1)*deltaBlockSize) — the shape ApplyDelta validates.
func deltaBlocks(base, n uint32, dirty *dirtySet) []deltaBlock {
	if n == 0 {
		return nil
	}
	var out []deltaBlock
	last := (n - 1) >> deltaBlockBits
	for b := uint32(0); b <= last; b++ {
		end := (b + 1) << deltaBlockBits
		if end > n {
			end = n
		}
		if !dirty.has(b) && end <= base {
			continue
		}
		out = append(out, deltaBlock{idx: b, lo: b << deltaBlockBits, hi: end})
	}
	return out
}
