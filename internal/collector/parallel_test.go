package collector

import (
	"math/rand"
	"testing"
	"time"

	"hitlist6/internal/addr"
)

// buildParallelTestCollector observes a mixed stream: random singleton
// IIDs, colliding IIDs across /64s (promotions) and EUI-64 devices with
// multi-/64 spans — every record shape the range iterators must cover.
func buildParallelTestCollector(t testing.TB, n int) *Collector {
	t.Helper()
	c := New()
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(rng.Intn(3600*24*30)) * time.Second)
		hi := 0x20010db8_00000000 | uint64(rng.Intn(256))<<16
		var lo uint64
		switch i % 5 {
		case 0, 1, 2: // random singleton
			lo = rng.Uint64()
		case 3: // shared IID across /64s: forces promotion
			lo = uint64(rng.Intn(8)) + 1
		case 4: // EUI-64 (ff:fe marker), tracked spans
			mac := uint64(rng.Intn(512))
			lo = (mac&0xffffff)<<40 | 0xfffe<<24 | (mac >> 24 & 0xffffff) | 0x02000000_00000000
		}
		c.Observe(addr.FromParts(hi, lo), ts, rng.Intn(4))
	}
	return c
}

// TestRangeIteratorsCoverSerialOrder asserts that stitching the range
// iterators over a partition reproduces the serial iterators exactly —
// same elements, same order — for awkward split points.
func TestRangeIteratorsCoverSerialOrder(t *testing.T) {
	c := buildParallelTestCollector(t, 20000)

	splits := func(n int) [][2]int {
		cuts := []int{0, 1, n / 3, n / 2, n - 1, n}
		var out [][2]int
		prev := 0
		for _, cut := range cuts {
			if cut < prev {
				continue
			}
			if cut > prev {
				out = append(out, [2]int{prev, cut})
			}
			prev = cut
		}
		if prev < n {
			out = append(out, [2]int{prev, n})
		}
		return out
	}

	// Addresses.
	var serialA, rangedA []addr.Addr
	c.Addrs(func(a addr.Addr, _ AddrRecord) bool { serialA = append(serialA, a); return true })
	for _, r := range splits(c.NumAddrs()) {
		c.AddrsRange(r[0], r[1], func(a addr.Addr, _ AddrRecord) bool {
			rangedA = append(rangedA, a)
			return true
		})
	}
	if len(serialA) != len(rangedA) {
		t.Fatalf("addrs: %d serial vs %d ranged", len(serialA), len(rangedA))
	}
	for i := range serialA {
		if serialA[i] != rangedA[i] {
			t.Fatalf("addrs diverge at %d", i)
		}
	}

	// IIDs (slot order).
	var serialI, rangedI []addr.IID
	c.IIDs(func(iid addr.IID, _ IIDView) bool { serialI = append(serialI, iid); return true })
	for _, r := range splits(c.NumIIDSlots()) {
		c.IIDSlotsRange(r[0], r[1], func(iid addr.IID, _ IIDView) bool {
			rangedI = append(rangedI, iid)
			return true
		})
	}
	if len(serialI) != len(rangedI) {
		t.Fatalf("iids: %d serial vs %d ranged", len(serialI), len(rangedI))
	}
	for i := range serialI {
		if serialI[i] != rangedI[i] {
			t.Fatalf("iids diverge at %d", i)
		}
	}

	// EUI-64 IIDs (promoted slab order), with span sums to check the
	// views resolve identically.
	type euiRow struct {
		iid   addr.IID
		spans int
	}
	var serialE, rangedE []euiRow
	c.EUI64IIDs(func(iid addr.IID, r IIDView) bool {
		serialE = append(serialE, euiRow{iid, r.NumP64s()})
		return true
	})
	for _, r := range splits(c.NumPromotedIIDs()) {
		c.EUI64IIDsRange(r[0], r[1], func(iid addr.IID, v IIDView) bool {
			rangedE = append(rangedE, euiRow{iid, v.NumP64s()})
			return true
		})
	}
	if len(serialE) == 0 {
		t.Fatal("test stream produced no EUI-64 IIDs")
	}
	if len(serialE) != len(rangedE) {
		t.Fatalf("eui64: %d serial vs %d ranged", len(serialE), len(rangedE))
	}
	for i := range serialE {
		if serialE[i] != rangedE[i] {
			t.Fatalf("eui64 diverge at %d", i)
		}
	}
}

// TestRangeIteratorsClamp checks out-of-bounds ranges are clamped, not
// panicking or double-visiting.
func TestRangeIteratorsClamp(t *testing.T) {
	c := buildParallelTestCollector(t, 500)
	n := 0
	c.AddrsRange(-5, c.NumAddrs()+100, func(addr.Addr, AddrRecord) bool { n++; return true })
	if n != c.NumAddrs() {
		t.Fatalf("clamped address range visited %d of %d", n, c.NumAddrs())
	}
	n = 0
	c.IIDSlotsRange(-1, c.NumIIDSlots()+7, func(addr.IID, IIDView) bool { n++; return true })
	if n != c.NumIIDs() {
		t.Fatalf("clamped IID range visited %d of %d", n, c.NumIIDs())
	}
	n = 0
	c.EUI64IIDsRange(-1, c.NumPromotedIIDs()+7, func(addr.IID, IIDView) bool { n++; return true })
	stop := 0
	c.EUI64IIDsRange(0, c.NumPromotedIIDs(), func(addr.IID, IIDView) bool { stop++; return false })
	if stop != 1 {
		t.Fatalf("early stop visited %d", stop)
	}
	if n == 0 {
		t.Fatal("clamped EUI-64 range visited nothing")
	}
}
