// Package collector implements the passive observation store: the paper's
// measurement core. Every NTP query's source address is recorded with
// first/last sighting times, a sighting count and the set of vantage
// servers that saw it; EUI-64 IIDs additionally carry their per-/64
// sighting spans, which power the tracking analyses of §5.
//
// The store is deliberately compact: a bespoke storage engine rather
// than maps of pointers. Records live inline — key and value together —
// in growable chunked slabs, indexed by open-addressing tables of uint32
// slab offsets, so the hot path performs no per-record heap allocation.
// Two observations about the corpus shape pay for most of the bytes:
//
//   - Nearly every IID appears under exactly one address (random IIDs
//     collide across /64s only by chance), and such an IID's aggregate
//     — first/last/count — is definitionally identical to its address's
//     record. Singleton IIDs therefore cost one 4-byte table slot
//     pointing at the address entry; a real IID record is materialized
//     ("promoted") only when a second address shares the IID or the IID
//     is EUI-64 and needs /64 tracking.
//
//   - Per-/64 spans for the EUI-64 subset (3% of the paper's corpus)
//     live in a shared span slab chained by index: a few machine words
//     per /64 instead of a nested map header plus pointers.
//
// No slab entry contains a pointer, which keeps the garbage collector
// out of the picture entirely — the property that lets a single machine
// hold hundreds of millions of records without GC pressure becoming the
// throughput ceiling. The collector is written by a single goroutine
// (the query replay) and read by many.
package collector

import (
	"time"
	"unsafe"

	"hitlist6/internal/addr"
)

// MaxServers is the number of distinct vantage-server bits an AddrRecord
// can hold: Servers is a uint32 bitmask, so indices 0..MaxServers-1 each
// get their own bit. The paper's deployment ran 27 servers; deployments
// beyond MaxServers saturate onto the top bit (see ServerBit) rather than
// silently shifting out of range.
const MaxServers = 32

// ServerBit maps a vantage-server index to its Servers-mask bit.
// Indices >= MaxServers saturate to the top bit (MaxServers-1); negative
// indices mean "no vantage attribution" and return 0.
func ServerBit(server int) uint32 {
	if server < 0 {
		return 0
	}
	if server >= MaxServers {
		server = MaxServers - 1
	}
	return 1 << uint(server)
}

// AddrRecord summarizes all sightings of one source address. It is a
// plain value: the collector stores records inline and hands out copies,
// so holding one never pins collector internals.
type AddrRecord struct {
	// First and Last are Unix seconds of the first and last sighting.
	First, Last int64
	// Count is the number of sightings.
	Count uint32
	// Servers is a bitmask of vantage servers (bit i = server i); the
	// paper ran 27 servers, so a uint32 suffices.
	Servers uint32
}

// Lifetime returns the observed address lifetime (paper Fig 2a): the span
// between first and last sighting. Addresses seen once have lifetime 0.
func (r AddrRecord) Lifetime() time.Duration {
	return time.Duration(r.Last-r.First) * time.Second
}

// Span is a first/last sighting window.
type Span struct {
	First, Last int64
}

// ---- chunked record slabs ----

// Slab geometry: the first chunk grows by appending (so small collectors
// — shard privates, day slices, tests — stay small), and once it reaches
// chunkSize further chunks are allocated at full capacity and never
// moved. Growth therefore copies at most chunkSize records ever, and
// cumulative allocation stays within a small constant of the final
// footprint — unlike append-doubling, whose churn rivals the corpus
// itself at hundreds of millions of records.
const (
	chunkBits = 15
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1
)

// slab is a growable array of inline records addressed by uint32 index.
type slab[T any] struct {
	head   []T   // first chunk; grows by append up to chunkSize
	chunks [][]T // subsequent chunks, each allocated at chunkSize cap
	n      uint32
}

// alloc appends a zero record and returns its index.
func (s *slab[T]) alloc() uint32 {
	var zero T
	i := s.n
	if i < chunkSize {
		s.head = append(s.head, zero)
	} else {
		ci := int((i - chunkSize) >> chunkBits)
		if ci == len(s.chunks) {
			s.chunks = append(s.chunks, make([]T, 0, chunkSize))
		}
		s.chunks[ci] = append(s.chunks[ci], zero)
	}
	s.n++
	return i
}

// at returns the record at index i. The pointer stays valid until the
// slab's owning chunk grows — only the first chunk ever moves, so
// holding a pointer across alloc calls on another slab is safe.
func (s *slab[T]) at(i uint32) *T {
	if i < chunkSize {
		return &s.head[i]
	}
	j := i - chunkSize
	return &s.chunks[j>>chunkBits][j&chunkMask]
}

// adoptAll moves every record of a donor slab onto the end of s,
// working in whole chunks. When s ends exactly on a chunk boundary the
// donor's chunks are adopted by reference — O(1) per chunk, no record
// copies; the donor owned them exclusively and hands them over. A
// misaligned tail (or a donor head chunk that could still grow and
// therefore move) is copied in chunk-sized runs instead. Donor record i
// lands at index s.n+i either way. The donor slab must not be used
// afterwards.
func (s *slab[T]) adoptAll(o *slab[T]) {
	if o.n == 0 {
		return
	}
	if s.n >= chunkSize && s.n&chunkMask == 0 && int((s.n-chunkSize)>>chunkBits) == len(s.chunks) {
		// Chunk-aligned: adopt the donor's chunk backbone by reference.
		// The donor head is only safe to alias when full — a partial head
		// adopted as s's growing tail chunk could be forced to reallocate
		// (and move) by a later append if its capacity is short, breaking
		// the "later chunks never move" contract — so a partial head is
		// recopied into a full-capacity chunk.
		head := o.head
		if uint32(len(head)) < chunkSize {
			head = append(make([]T, 0, chunkSize), o.head...)
		}
		s.chunks = append(s.chunks, head)
		s.chunks = append(s.chunks, o.chunks...)
		s.n += o.n
		*o = slab[T]{}
		return
	}
	// Misaligned: copy records through in runs, one donor chunk at a
	// time — still whole-chunk memmoves, just not pointer adoptions.
	copyRun := func(run []T) {
		for len(run) > 0 {
			i := s.n
			var dst []T
			var room uint32
			if i < chunkSize {
				// Grow the head to its final size in one step.
				need := min(uint32(len(run)), chunkSize-i)
				s.head = append(s.head, run[:need]...)
				s.n += need
				run = run[need:]
				continue
			}
			ci := int((i - chunkSize) >> chunkBits)
			if ci == len(s.chunks) {
				s.chunks = append(s.chunks, make([]T, 0, chunkSize))
			}
			dst = s.chunks[ci]
			room = chunkSize - uint32(len(dst))
			n := min(uint32(len(run)), room)
			s.chunks[ci] = append(dst, run[:n]...)
			s.n += n
			run = run[n:]
		}
	}
	copyRun(o.head)
	for _, ch := range o.chunks {
		copyRun(ch)
	}
	*o = slab[T]{}
}

// bytes returns the slab's resident size.
func (s *slab[T]) bytes() uint64 {
	var zero T
	size := uint64(unsafe.Sizeof(zero))
	n := uint64(cap(s.head))
	for _, c := range s.chunks {
		n += uint64(cap(c))
	}
	return n * size
}

// ---- open-addressing index tables ----

// tableInit is the initial slot count of an index table (power of two).
const tableInit = 16

// growTable reports whether an index with used entries out of len slots
// needs to grow before the next insert (load factor 3/4). The math is
// 64-bit so tables past 2^32 slots keep comparing correctly.
func growTable(used uint64, slots int) bool {
	return slots == 0 || used >= uint64(slots)-uint64(slots)/4
}

// mix64 is the SplitMix64 finalizer: the hash behind the IID table and
// prefix sets (addresses use addr.Hash64, which mixes both halves).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// addrEntry is one inline (address, record) pair in the address slab.
//
//lint:slab
type addrEntry struct {
	key addr.Addr
	rec AddrRecord
}

// spanNone marks an IID record without /64 tracking (non-EUI-64 IIDs).
// Tracked records always chain at least one span node, so the sentinel
// doubles as the "tracked?" flag.
const spanNone = ^uint32(0)

// iidEntry is one inline promoted IID record. first/last/count summarize
// all sightings; spans heads the IID's chain in the shared span slab
// (spanNone when the IID is not EUI-64); p64n counts distinct /64s so
// prefix-spread queries are O(1).
//
//lint:slab
type iidEntry struct {
	key         addr.IID
	first, last int64
	count       uint32
	spans       uint32
	p64n        uint32
}

// spanNode is one /64 sighting window in the shared span slab. next
// chains the nodes of one IID by slab index, terminated by spanNone.
//
//lint:slab
type spanNode struct {
	p64         addr.Prefix64
	first, last int64
	next        uint32
}

// promotedTag marks an IID reference as an index into the promoted IID
// slab; without it the reference indexes the address slab (a singleton
// IID whose record is its address's record).
const promotedTag = uint32(1) << 31

// u64set is an open-addressing set of uint64 keys (the distinct-/48 and
// /64 prefix sets). Zero keys are tracked out of band so 0 can mark
// empty slots.
type u64set struct {
	slots   []uint64
	used    int
	hasZero bool
}

// insert adds v, reporting whether it was new.
func (s *u64set) insert(v uint64) bool {
	if v == 0 {
		if s.hasZero {
			return false
		}
		s.hasZero = true
		return true
	}
	if growTable(uint64(s.used), len(s.slots)) {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	pos := mix64(v) & mask
	for {
		switch s.slots[pos] {
		case 0:
			s.slots[pos] = v
			s.used++
			return true
		case v:
			return false
		}
		pos = (pos + 1) & mask
	}
}

func (s *u64set) grow() {
	next := tableInit
	if len(s.slots) > 0 {
		next = len(s.slots) * 2
	}
	old := s.slots
	s.slots = make([]uint64, next)
	mask := uint64(next - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		pos := mix64(v) & mask
		for s.slots[pos] != 0 {
			pos = (pos + 1) & mask
		}
		s.slots[pos] = v
	}
}

// contains reports membership without inserting.
func (s *u64set) contains(v uint64) bool {
	if v == 0 {
		return s.hasZero
	}
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	pos := mix64(v) & mask
	for {
		switch s.slots[pos] {
		case 0:
			return false
		case v:
			return true
		}
		pos = (pos + 1) & mask
	}
}

// each visits every element (unspecified order).
func (s *u64set) each(fn func(v uint64)) {
	if s.hasZero {
		fn(0)
	}
	for _, v := range s.slots {
		if v != 0 {
			fn(v)
		}
	}
}

func (s *u64set) len() int {
	if s.hasZero {
		return s.used + 1
	}
	return s.used
}

func (s *u64set) bytes() uint64 { return uint64(len(s.slots)) * 8 }

// Collector accumulates observations. Not safe for concurrent writes,
// and reads must not run concurrently with writes (see Store for the
// concurrency boundary). Slab indices are tagged uint32s: one collector
// holds at most ~2.1 billion unique addresses/IIDs — beyond that, shard.
type Collector struct {
	addrRecs slab[addrEntry]
	addrIdx  []uint32 // open addressing; slot holds recIdx+1, 0 = empty
	iidRecs  slab[iidEntry]
	// iidIdx slots hold ref+1 where ref is a promoted-slab index (with
	// promotedTag) or the address-slab index of a singleton IID's only
	// address; 0 = empty.
	iidIdx  []uint32
	iidUsed uint32 // occupied iidIdx slots = unique IIDs
	spans   slab[spanNode]
	// p48s/p64s are the distinct-prefix sets behind Unique48s/Unique64s,
	// maintained incrementally: inserting on new-address creation and
	// unioning on Merge commutes exactly like the records themselves.
	p48s  u64set
	p64s  u64set
	total uint64
	// ckpt is the delta-checkpoint watermark (see dirty.go): which slab
	// prefix the last checkpoint covered and which blocks of it have been
	// mutated in place since.
	ckpt ckptState
}

// New returns an empty collector. All storage grows on demand, so idle
// collectors (fresh shards, day slices) cost almost nothing.
func New() *Collector {
	return &Collector{}
}

// growAddrIdx rebuilds the address index table at double capacity.
func (c *Collector) growAddrIdx() {
	next := tableInit
	if len(c.addrIdx) > 0 {
		next = len(c.addrIdx) * 2
	}
	c.resizeAddrIdx(next)
}

// findAddr returns the slab index of a's record, or with ok == false the
// empty table slot where it belongs.
func (c *Collector) findAddr(a addr.Addr) (idx uint32, slot uint32, ok bool) {
	if len(c.addrIdx) == 0 {
		return 0, 0, false
	}
	mask := uint64(len(c.addrIdx) - 1)
	pos := a.Hash64() & mask
	for {
		v := c.addrIdx[pos]
		if v == 0 {
			return 0, uint32(pos), false
		}
		if c.addrRecs.at(v-1).key == a {
			return v - 1, uint32(pos), true
		}
		pos = (pos + 1) & mask
	}
}

// insertAddr allocates a's record in the empty slot findAddr reported.
func (c *Collector) insertAddr(a addr.Addr, slot uint32) (uint32, *addrEntry) {
	if growTable(uint64(c.addrRecs.n), len(c.addrIdx)) {
		c.growAddrIdx()
		_, slot, _ = c.findAddr(a)
	}
	i := c.addrRecs.alloc()
	c.addrIdx[slot] = i + 1
	e := c.addrRecs.at(i)
	e.key = a
	c.p48s.insert(uint64(a.P48()))
	c.p64s.insert(uint64(a.P64()))
	return i, e
}

// iidKeyOf resolves the IID a table reference stands for.
func (c *Collector) iidKeyOf(ref uint32) addr.IID {
	if ref&promotedTag != 0 {
		return c.iidRecs.at(ref &^ promotedTag).key
	}
	return c.addrRecs.at(ref).key.IID()
}

// growIIDIdx rebuilds the IID index table at double capacity.
func (c *Collector) growIIDIdx() {
	next := tableInit
	if len(c.iidIdx) > 0 {
		next = len(c.iidIdx) * 2
	}
	c.resizeIIDIdx(next)
}

// findIID returns iid's table reference, or with ok == false the empty
// slot where it belongs.
func (c *Collector) findIID(iid addr.IID) (ref uint32, slot uint32, ok bool) {
	if len(c.iidIdx) == 0 {
		return 0, 0, false
	}
	mask := uint64(len(c.iidIdx) - 1)
	pos := mix64(uint64(iid)) & mask
	for {
		v := c.iidIdx[pos]
		if v == 0 {
			return 0, uint32(pos), false
		}
		if c.iidKeyOf(v-1) == iid {
			return v - 1, uint32(pos), true
		}
		pos = (pos + 1) & mask
	}
}

// setIIDSlot stores a new IID reference in the empty slot findIID
// reported, growing the table first when needed.
func (c *Collector) setIIDSlot(slot uint32, ref uint32, iid addr.IID) {
	if growTable(uint64(c.iidUsed), len(c.iidIdx)) {
		c.growIIDIdx()
		_, slot, _ = c.findIID(iid)
	}
	c.iidIdx[slot] = ref + 1
	c.iidUsed++
}

// allocPromoted materializes a promoted IID record seeded with the given
// aggregate and returns its slab index and entry. The caller wires the
// table slot: setIIDSlot for a new IID, or an in-place overwrite when
// promoting an existing singleton (the IID count is unchanged there, so
// no growth check is needed).
func (c *Collector) allocPromoted(iid addr.IID, first, last int64, count uint32) (uint32, *iidEntry) {
	ri := c.iidRecs.alloc()
	e := c.iidRecs.at(ri)
	e.key = iid
	e.first, e.last, e.count = first, last, count
	e.spans = spanNone
	return ri, e
}

// Observe records one sighting of a at time t from the given vantage
// server index (0-based; indexes >= MaxServers saturate onto the top bit).
func (c *Collector) Observe(a addr.Addr, t time.Time, server int) {
	c.ObserveUnix(a, t.Unix(), server)
}

// ObserveUnix is Observe with a pre-converted Unix-seconds timestamp: the
// form the ingest pipeline's Event carries, avoiding a time.Time round
// trip per sighting on the hot path.
func (c *Collector) ObserveUnix(a addr.Addr, ts int64, server int) {
	serverBit := ServerBit(server)
	c.total++

	ai, slot, ok := c.findAddr(a)
	if ok {
		r := &c.addrRecs.at(ai).rec
		if ts < r.First {
			r.First = ts
		}
		if ts > r.Last {
			r.Last = ts
		}
		r.Count++
		r.Servers |= serverBit
		c.markAddrDirty(ai)
	} else {
		var e *addrEntry
		ai, e = c.insertAddr(a, slot)
		e.rec = AddrRecord{First: ts, Last: ts, Count: 1, Servers: serverBit}
	}

	iid := a.IID()
	ref, slot, found := c.findIID(iid)
	if !found {
		if iid.IsEUI64() {
			ri, e := c.allocPromoted(iid, ts, ts, 1)
			c.widenSpan(ri, e, a.P64(), ts, ts)
			c.setIIDSlot(slot, ri|promotedTag, iid)
			return
		}
		// Singleton IID: its record is the address record; one table
		// slot is the whole cost.
		c.setIIDSlot(slot, ai, iid)
		return
	}
	if ref&promotedTag != 0 {
		ri := ref &^ promotedTag
		r := c.iidRecs.at(ri)
		if ts < r.first {
			r.first = ts
		}
		if ts > r.last {
			r.last = ts
		}
		r.count++
		c.markIIDDirty(ri)
		if r.spans != spanNone {
			c.widenSpan(ri, r, a.P64(), ts, ts)
		}
		return
	}
	// Singleton reference. Same address: the address record update above
	// already IS the IID update. A second address sharing the IID (a
	// random-IID collision across /64s) promotes the singleton; EUI-64
	// IIDs are promoted at first sight, so no span handling is needed.
	if ref == ai {
		return
	}
	base := c.addrRecs.at(ref).rec
	first, last := base.First, base.Last
	if ts < first {
		first = ts
	}
	if ts > last {
		last = ts
	}
	ri, _ := c.allocPromoted(iid, first, last, base.Count+1)
	c.iidIdx[slot] = (ri | promotedTag) + 1
}

// widenSpan folds the window [first, last] into r's span for p, walking
// the IID's chain and prepending a fresh node when the /64 is new. A
// matched node moves to the chain head, so repeat sightings of an IID's
// current /64 — the overwhelmingly common case — stay O(1) even for
// identifiers spread across many /64s. r must point into the IID slab
// at index ri (needed for dirty tracking of the chain head); appending
// to the span slab never moves it.
func (c *Collector) widenSpan(ri uint32, r *iidEntry, p addr.Prefix64, first, last int64) {
	prev := spanNone
	for i := r.spans; i != spanNone; {
		n := c.spans.at(i)
		if n.p64 == p {
			if first < n.first {
				n.first = first
			}
			if last > n.last {
				n.last = last
			}
			c.markSpanDirty(i)
			if prev != spanNone {
				c.spans.at(prev).next = n.next
				n.next = r.spans
				r.spans = i
				c.markSpanDirty(prev)
				c.markIIDDirty(ri)
			}
			return
		}
		prev = i
		i = n.next
	}
	i := c.spans.alloc()
	n := c.spans.at(i)
	n.p64, n.first, n.last, n.next = p, first, last, r.spans
	r.spans = i
	r.p64n++
	c.markIIDDirty(ri)
}

// NumAddrs returns the number of unique addresses observed.
func (c *Collector) NumAddrs() int { return int(c.addrRecs.n) }

// NumIIDs returns the number of unique IIDs observed.
func (c *Collector) NumIIDs() int { return int(c.iidUsed) }

// TotalObservations returns the raw sighting count.
func (c *Collector) TotalObservations() uint64 { return c.total }

// Get returns a copy of the record for an address; ok is false when the
// address was never observed.
func (c *Collector) Get(a addr.Addr) (AddrRecord, bool) {
	i, _, ok := c.findAddr(a)
	if !ok {
		return AddrRecord{}, false
	}
	return c.addrRecs.at(i).rec, true
}

// IIDView is a read handle onto one IID's record (inline promoted record
// or singleton address record) and span chain. It is a two-word value —
// copying it is free — but it borrows the collector's slabs: a view is
// valid only until the next write to the collector, like a map iterator.
type IIDView struct {
	c   *Collector
	ref uint32
}

// promoted returns the promoted record, or nil for singleton IIDs.
func (v IIDView) promoted() *iidEntry {
	if v.ref&promotedTag == 0 {
		return nil
	}
	return v.c.iidRecs.at(v.ref &^ promotedTag)
}

// summary returns the IID's (first, last, count) aggregate.
func (v IIDView) summary() (int64, int64, uint32) {
	if r := v.promoted(); r != nil {
		return r.first, r.last, r.count
	}
	rec := &v.c.addrRecs.at(v.ref).rec
	return rec.First, rec.Last, rec.Count
}

// First returns the Unix second of the IID's first sighting.
func (v IIDView) First() int64 { f, _, _ := v.summary(); return f }

// Last returns the Unix second of the IID's last sighting.
func (v IIDView) Last() int64 { _, l, _ := v.summary(); return l }

// Count returns the IID's total sighting count.
func (v IIDView) Count() uint32 { _, _, n := v.summary(); return n }

// Lifetime returns the IID's observed lifetime (paper Fig 2b, 6a).
func (v IIDView) Lifetime() time.Duration {
	f, l, _ := v.summary()
	return time.Duration(l-f) * time.Second
}

// Tracked reports whether per-/64 spans are kept (EUI-64 IIDs only).
func (v IIDView) Tracked() bool {
	r := v.promoted()
	return r != nil && r.spans != spanNone
}

// NumP64s returns the number of distinct /64s the IID appeared in
// (0 for untracked IIDs). O(1): the count is maintained on write.
func (v IIDView) NumP64s() int {
	if r := v.promoted(); r != nil {
		return int(r.p64n)
	}
	return 0
}

// P64s iterates the IID's per-/64 sighting spans in unspecified order;
// the callback returning false stops early.
func (v IIDView) P64s(fn func(p addr.Prefix64, sp Span) bool) {
	r := v.promoted()
	if r == nil {
		return
	}
	for i := r.spans; i != spanNone; {
		n := v.c.spans.at(i)
		if !fn(n.p64, Span{First: n.first, Last: n.last}) {
			return
		}
		i = n.next
	}
}

// Span returns the sighting window of the IID inside one /64.
func (v IIDView) Span(p addr.Prefix64) (Span, bool) {
	r := v.promoted()
	if r == nil {
		return Span{}, false
	}
	for i := r.spans; i != spanNone; {
		n := v.c.spans.at(i)
		if n.p64 == p {
			return Span{First: n.first, Last: n.last}, true
		}
		i = n.next
	}
	return Span{}, false
}

// GetIID returns a view of the record for an IID; ok is false when the
// IID was never observed.
func (c *Collector) GetIID(iid addr.IID) (IIDView, bool) {
	ref, _, ok := c.findIID(iid)
	if !ok {
		return IIDView{}, false
	}
	return IIDView{c: c, ref: ref}, true
}

// Addrs iterates every (address, record) pair in slab (insertion) order;
// the callback returning false stops early. Records are handed out by
// value. The order is not part of the contract — use AddrsCanonical for
// determinism across differently built corpora.
func (c *Collector) Addrs(fn func(a addr.Addr, r AddrRecord) bool) {
	for i := uint32(0); i < c.addrRecs.n; i++ {
		e := c.addrRecs.at(i)
		if !fn(e.key, e.rec) {
			return
		}
	}
}

// AddrsCanonical iterates every (address, record) pair in canonical
// order (ascending by address value) — the order WriteCanonical encodes,
// so consumers that need run-to-run determinism share one definition of
// "sorted corpus".
func (c *Collector) AddrsCanonical(fn func(a addr.Addr, r AddrRecord) bool) {
	for _, i := range c.sortedAddrIdx() {
		e := c.addrRecs.at(i)
		if !fn(e.key, e.rec) {
			return
		}
	}
}

// IIDs iterates every (IID, view) pair in unspecified order.
func (c *Collector) IIDs(fn func(iid addr.IID, r IIDView) bool) {
	for _, v := range c.iidIdx {
		if v == 0 {
			continue
		}
		ref := v - 1
		if !fn(c.iidKeyOf(ref), IIDView{c: c, ref: ref}) {
			return
		}
	}
}

// EUI64IIDs iterates only EUI-64 IIDs (those with /64 tracking). EUI-64
// IIDs are always promoted, so this walks the promoted slab directly.
func (c *Collector) EUI64IIDs(fn func(iid addr.IID, r IIDView) bool) {
	for i := uint32(0); i < c.iidRecs.n; i++ {
		e := c.iidRecs.at(i)
		if e.spans == spanNone {
			continue
		}
		if !fn(e.key, IIDView{c: c, ref: i | promotedTag}) {
			return
		}
	}
}

// AddressList materializes all observed addresses; prefer Addrs for large
// corpora.
func (c *Collector) AddressList() []addr.Addr {
	out := make([]addr.Addr, 0, c.addrRecs.n)
	for i := uint32(0); i < c.addrRecs.n; i++ {
		out = append(out, c.addrRecs.at(i).key)
	}
	return out
}

// Merge folds another collector's observations into c, as if every
// sighting had been recorded here: first/last spans widen, counts add,
// server masks union, and per-/64 spans merge. The copy is deep — c
// never aliases o's slabs, so o may keep being written afterwards. This
// is how per-vantage (or per-shard) collectors combine into the study
// corpus.
//
// Addresses merge first; the IID pass then resolves singleton references
// against c's post-merge address table, so merged corpora keep the
// singleton-IID memory optimization instead of promoting everything.
func (c *Collector) Merge(o *Collector) {
	for oi := uint32(0); oi < o.addrRecs.n; oi++ {
		oe := o.addrRecs.at(oi)
		if i, slot, ok := c.findAddr(oe.key); ok {
			mine := &c.addrRecs.at(i).rec
			if oe.rec.First < mine.First {
				mine.First = oe.rec.First
			}
			if oe.rec.Last > mine.Last {
				mine.Last = oe.rec.Last
			}
			mine.Count += oe.rec.Count
			mine.Servers |= oe.rec.Servers
			c.markAddrDirty(i)
		} else {
			_, e := c.insertAddr(oe.key, slot)
			e.rec = oe.rec
		}
	}
	// insertAddr already folded every new address's prefixes; unioning
	// the sets directly as well costs nothing extra and keeps them right
	// even if the invariants above ever loosen.
	o.p48s.each(func(v uint64) { c.p48s.insert(v) })
	o.p64s.each(func(v uint64) { c.p64s.insert(v) })

	// The IID pass must NOT walk o.iidIdx in slot order: slot order is
	// ascending hash order, and when both tables share a mask (shards of
	// similar size always do) that means inserting into c in ascending
	// home-position order. Near c's load threshold such a sweep sews
	// every existing probe run into one — a third of the table can end
	// up as a single occupied run mid-merge — and each lookup behind the
	// sweep front degrades to O(table): a quadratic merge in practice
	// (~100x slower at a million records). Promoted entries therefore
	// merge in slab order and singletons in address-slab order, both
	// uncorrelated with hash position (and sequential on the donor side,
	// as a bonus). Merge results are order-independent, so only the cost
	// changes.
	for i := uint32(0); i < o.iidRecs.n; i++ {
		c.mergeIIDPromoted(o, o.iidRecs.at(i))
	}
	for _, ref := range o.singletonRefs() {
		oe := o.addrRecs.at(ref)
		c.mergeIIDSingleton(oe.key, oe.rec)
	}
	c.total += o.total
}

// singletonRefs returns every singleton IID's address-slab reference,
// ref-sorted (address insertion order — deliberately uncorrelated with
// IID hash order; see the Merge comment).
func (c *Collector) singletonRefs() []uint32 {
	singles := make([]uint32, 0, c.iidUsed-c.iidRecs.n)
	for _, v := range c.iidIdx {
		if v == 0 || (v-1)&promotedTag != 0 {
			continue
		}
		singles = append(singles, v-1)
	}
	radixSortU32(singles)
	return singles
}

// mergeIIDSingleton folds an IID that o saw under exactly one address
// (bAddr, with o-side record bRec) into c.
func (c *Collector) mergeIIDSingleton(bAddr addr.Addr, bRec AddrRecord) {
	iid := bAddr.IID()
	ref, slot, ok := c.findIID(iid)
	if !ok {
		// New to c as well: reference c's (post-merge) address record.
		bi, _, found := c.findAddr(bAddr)
		if !found {
			// Unreachable: the address pass inserted every o address.
			return
		}
		c.setIIDSlot(slot, bi, iid)
		return
	}
	if ref&promotedTag != 0 {
		// c already tracks multiple addresses for this IID; o's sightings
		// of bAddr are disjoint from c's, so the count adds cleanly.
		ri := ref &^ promotedTag
		r := c.iidRecs.at(ri)
		if bRec.First < r.first {
			r.first = bRec.First
		}
		if bRec.Last > r.last {
			r.last = bRec.Last
		}
		r.count += bRec.Count
		c.markIIDDirty(ri)
		return
	}
	mine := c.addrRecs.at(ref)
	if mine.key == bAddr {
		// Same singleton address on both sides: the address pass already
		// merged the records, and the singleton reference reads it.
		return
	}
	// Two distinct singleton addresses meet: promote. Neither side can
	// have held the other's address (it would have promoted earlier), so
	// both post-merge records are disjoint aggregates.
	bi, _, found := c.findAddr(bAddr)
	if !found {
		return // unreachable, as above
	}
	other := c.addrRecs.at(bi).rec
	first, last := mine.rec.First, mine.rec.Last
	if other.First < first {
		first = other.First
	}
	if other.Last > last {
		last = other.Last
	}
	ri, _ := c.allocPromoted(iid, first, last, mine.rec.Count+other.Count)
	c.iidIdx[slot] = (ri | promotedTag) + 1
}

// mergeIIDPromoted folds one of o's promoted IID records into c.
func (c *Collector) mergeIIDPromoted(o *Collector, or *iidEntry) {
	iid := or.key
	ref, slot, ok := c.findIID(iid)
	var r *iidEntry
	var ri uint32
	switch {
	case !ok:
		ri, r = c.allocPromoted(iid, or.first, or.last, or.count)
		c.setIIDSlot(slot, ri|promotedTag, iid)
	case ref&promotedTag != 0:
		ri = ref &^ promotedTag
		r = c.iidRecs.at(ri)
		if or.first < r.first {
			r.first = or.first
		}
		if or.last > r.last {
			r.last = or.last
		}
		r.count += or.count
		c.markIIDDirty(ri)
	default:
		// c holds a singleton whose address pass may already have folded
		// o's sightings of that same address — which or.count includes
		// too. Subtract o's copy of the overlap so it counts once.
		mine := c.addrRecs.at(ref)
		count := mine.rec.Count + or.count
		if oxi, _, found := o.findAddr(mine.key); found {
			count -= o.addrRecs.at(oxi).rec.Count
		}
		first, last := mine.rec.First, mine.rec.Last
		if or.first < first {
			first = or.first
		}
		if or.last > last {
			last = or.last
		}
		ri, r = c.allocPromoted(iid, first, last, count)
		c.iidIdx[slot] = (ri | promotedTag) + 1
	}
	for si := or.spans; si != spanNone; {
		sn := o.spans.at(si)
		c.widenSpan(ri, r, sn.p64, sn.first, sn.last)
		si = sn.next
	}
}

// Absorb folds another collector's observations into c like Merge, but
// takes ownership of o — the donor must not be used afterwards — which
// unlocks the chunk-level fast paths record-by-record merging cannot
// have:
//
//   - Into an empty c, the donor's slabs, tables and prefix sets move
//     over wholesale: O(1), no record is touched.
//   - When the key ranges do not collide (no donor address or IID
//     already present in c — the common case for cross-shard merges,
//     whose address-hash partitioning makes shards disjoint by
//     construction), the donor's slab chunks are adopted whole: records
//     land by chunk move with their span chains and singleton
//     references rebased in bulk, and only the index tables see
//     per-record work. None of the merge machinery — record compare,
//     promotion, span-chain walking — runs.
//   - Colliding corpora fall back to Merge's record-by-record path.
//
// The result is observation-identical to Merge in every case (pinned by
// the chunk-vs-record equivalence tests); only the cost differs. This
// is what Store.ApplyShard runs on every shard snapshot.
func (c *Collector) Absorb(o *Collector) {
	if o == nil {
		return
	}
	if o.addrRecs.n == 0 && o.iidUsed == 0 {
		c.total += o.total
		*o = Collector{}
		return
	}
	if c.addrRecs.n == 0 && c.iidUsed == 0 && c.spans.n == 0 {
		total := c.total
		ck := c.ckpt
		*c = *o
		c.total += total
		// c keeps its own checkpoint lineage, not the donor's: c was
		// empty, so its watermarks are zero and every adopted record
		// counts as new against them.
		c.ckpt = ck
		*o = Collector{}
		return
	}
	if !c.disjointFrom(o) {
		c.Merge(o)
		*o = Collector{}
		return
	}
	c.adoptDisjoint(o)
}

// disjointFrom reports whether none of o's addresses or IIDs already
// exist in c: the precondition for chunk adoption. Pure probes — O(n)
// hash lookups, no allocation — bailing at the first collision.
func (c *Collector) disjointFrom(o *Collector) bool {
	for i := uint32(0); i < o.addrRecs.n; i++ {
		if _, _, ok := c.findAddr(o.addrRecs.at(i).key); ok {
			return false
		}
	}
	for _, v := range o.iidIdx {
		if v == 0 {
			continue
		}
		if _, _, ok := c.findIID(o.iidKeyOf(v - 1)); ok {
			return false
		}
	}
	return true
}

// adoptDisjoint implements Absorb's non-colliding fast path: whole-chunk
// slab adoption with bulk index rebasing. Donor record i lands at
// base+i in each slab, so intra-donor references — span chain nexts,
// IID span heads, singleton address references — stay valid under a
// constant offset.
func (c *Collector) adoptDisjoint(o *Collector) {
	addrBase := c.addrRecs.n
	iidBase := c.iidRecs.n
	spanBase := c.spans.n

	c.addrRecs.adoptAll(&o.addrRecs)
	c.iidRecs.adoptAll(&o.iidRecs)
	c.spans.adoptAll(&o.spans)

	// Rebase the adopted IID entries' span heads and the adopted span
	// nodes' chain links by the slab offsets.
	for i := iidBase; i < c.iidRecs.n; i++ {
		if e := c.iidRecs.at(i); e.spans != spanNone {
			e.spans += spanBase
		}
	}
	for i := spanBase; i < c.spans.n; i++ {
		if n := c.spans.at(i); n.next != spanNone {
			n.next += spanBase
		}
	}

	// Index the adopted records. Presize both tables once for the final
	// counts so adoption never rehashes mid-insert.
	if need := tableSizeFor(uint64(c.addrRecs.n)); need > len(c.addrIdx) {
		c.resizeAddrIdx(need)
	}
	mask := uint64(len(c.addrIdx) - 1)
	for i := addrBase; i < c.addrRecs.n; i++ {
		e := c.addrRecs.at(i)
		pos := e.key.Hash64() & mask
		for c.addrIdx[pos] != 0 {
			pos = (pos + 1) & mask
		}
		c.addrIdx[pos] = i + 1
		c.p48s.insert(uint64(e.key.P48()))
		c.p64s.insert(uint64(e.key.P64()))
	}

	if need := tableSizeFor(uint64(c.iidUsed) + uint64(o.iidUsed)); need > len(c.iidIdx) {
		c.resizeIIDIdx(need)
	}
	mask = uint64(len(c.iidIdx) - 1)
	insert := func(ref uint32, iid addr.IID) {
		pos := mix64(uint64(iid)) & mask
		for c.iidIdx[pos] != 0 {
			pos = (pos + 1) & mask
		}
		c.iidIdx[pos] = ref + 1
		c.iidUsed++
	}
	// Slab order for promoted entries, ref order for singletons: like
	// Merge, never insert in the donor table's slot (= ascending hash)
	// order — see the Merge comment for the probe-run pathology. The
	// adopted promoted entries are iidBase..n of c's slab now (adoptAll
	// emptied o's).
	for ri := iidBase; ri < c.iidRecs.n; ri++ {
		insert(ri|promotedTag, c.iidRecs.at(ri).key)
	}
	for _, ref := range o.singletonRefs() {
		ai := ref + addrBase
		insert(ai, c.addrRecs.at(ai).key.IID())
	}

	c.total += o.total
	*o = Collector{}
}

// resizeAddrIdx rebuilds the address table at the given power-of-two
// slot count.
func (c *Collector) resizeAddrIdx(slots int) {
	old := c.addrIdx
	c.addrIdx = make([]uint32, slots)
	mask := uint64(slots - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		pos := c.addrRecs.at(v-1).key.Hash64() & mask
		for c.addrIdx[pos] != 0 {
			pos = (pos + 1) & mask
		}
		c.addrIdx[pos] = v
	}
}

// resizeIIDIdx rebuilds the IID table at the given power-of-two slot
// count.
func (c *Collector) resizeIIDIdx(slots int) {
	old := c.iidIdx
	c.iidIdx = make([]uint32, slots)
	mask := uint64(slots - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		pos := mix64(uint64(c.iidKeyOf(v-1))) & mask
		for c.iidIdx[pos] != 0 {
			pos = (pos + 1) & mask
		}
		c.iidIdx[pos] = v
	}
}

// Unique48s returns the number of distinct /48 prefixes in the corpus
// (Table 1 column). O(1): the set is maintained on Observe/Merge.
func (c *Collector) Unique48s() int { return c.p48s.len() }

// Unique64s returns the number of distinct /64 prefixes in the corpus.
func (c *Collector) Unique64s() int { return c.p64s.len() }

// MemoryFootprint returns the corpus's resident bytes: record and span
// slabs, index tables and prefix sets. Unlike a map-based store the
// engine owns every allocation, so the figure is exact (modulo slice
// headers) — it is what daemons export as corpus_bytes telemetry.
func (c *Collector) MemoryFootprint() uint64 {
	return c.addrRecs.bytes() + c.iidRecs.bytes() + c.spans.bytes() +
		uint64(len(c.addrIdx))*4 + uint64(len(c.iidIdx))*4 +
		c.p48s.bytes() + c.p64s.bytes() +
		c.ckpt.dirtyAddr.bytes() + c.ckpt.dirtyIID.bytes() + c.ckpt.dirtySpan.bytes()
}
