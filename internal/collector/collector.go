// Package collector implements the passive observation store: the paper's
// measurement core. Every NTP query's source address is recorded with
// first/last sighting times, a sighting count and the set of vantage
// servers that saw it; EUI-64 IIDs additionally carry their per-/64
// sighting spans, which power the tracking analyses of §5.
//
// The store is deliberately compact: one fixed-size record per unique
// address keyed on the 16-byte address value, and per-/64 span maps only
// for the EUI-64 subset (3% of the paper's corpus). It is written by a
// single goroutine (the query replay) and read by many.
package collector

import (
	"time"

	"hitlist6/internal/addr"
)

// MaxServers is the number of distinct vantage-server bits an AddrRecord
// can hold: Servers is a uint32 bitmask, so indices 0..MaxServers-1 each
// get their own bit. The paper's deployment ran 27 servers; deployments
// beyond MaxServers saturate onto the top bit (see ServerBit) rather than
// silently shifting out of range.
const MaxServers = 32

// ServerBit maps a vantage-server index to its Servers-mask bit.
// Indices >= MaxServers saturate to the top bit (MaxServers-1); negative
// indices mean "no vantage attribution" and return 0.
func ServerBit(server int) uint32 {
	if server < 0 {
		return 0
	}
	if server >= MaxServers {
		server = MaxServers - 1
	}
	return 1 << uint(server)
}

// AddrRecord summarizes all sightings of one source address.
type AddrRecord struct {
	// First and Last are Unix seconds of the first and last sighting.
	First, Last int64
	// Count is the number of sightings.
	Count uint32
	// Servers is a bitmask of vantage servers (bit i = server i); the
	// paper ran 27 servers, so a uint32 suffices.
	Servers uint32
}

// Lifetime returns the observed address lifetime (paper Fig 2a): the span
// between first and last sighting. Addresses seen once have lifetime 0.
func (r AddrRecord) Lifetime() time.Duration {
	return time.Duration(r.Last-r.First) * time.Second
}

// Span is a first/last sighting window.
type Span struct {
	First, Last int64
}

// IIDRecord aggregates sightings of one Interface Identifier across all
// addresses carrying it. For EUI-64 IIDs, P64s maps each /64 the IID
// appeared in to its sighting span — the raw material for §5.2.
type IIDRecord struct {
	First, Last int64
	Count       uint32
	// P64s is nil for non-EUI-64 IIDs (kept only where tracking applies).
	P64s map[addr.Prefix64]*Span
}

// Lifetime returns the IID's observed lifetime (paper Fig 2b, 6a).
func (r *IIDRecord) Lifetime() time.Duration {
	return time.Duration(r.Last-r.First) * time.Second
}

// Collector accumulates observations. Not safe for concurrent writes.
type Collector struct {
	addrs map[addr.Addr]*AddrRecord
	iids  map[addr.IID]*IIDRecord
	total uint64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		addrs: make(map[addr.Addr]*AddrRecord),
		iids:  make(map[addr.IID]*IIDRecord),
	}
}

// Observe records one sighting of a at time t from the given vantage
// server index (0-based; indexes >= MaxServers saturate onto the top bit).
func (c *Collector) Observe(a addr.Addr, t time.Time, server int) {
	c.ObserveUnix(a, t.Unix(), server)
}

// ObserveUnix is Observe with a pre-converted Unix-seconds timestamp: the
// form the ingest pipeline's Event carries, avoiding a time.Time round
// trip per sighting on the hot path.
func (c *Collector) ObserveUnix(a addr.Addr, ts int64, server int) {
	serverBit := ServerBit(server)
	c.total++

	if r, ok := c.addrs[a]; ok {
		if ts < r.First {
			r.First = ts
		}
		if ts > r.Last {
			r.Last = ts
		}
		r.Count++
		r.Servers |= serverBit
	} else {
		c.addrs[a] = &AddrRecord{First: ts, Last: ts, Count: 1, Servers: serverBit}
	}

	iid := a.IID()
	r, ok := c.iids[iid]
	if !ok {
		r = &IIDRecord{First: ts, Last: ts}
		if iid.IsEUI64() {
			r.P64s = make(map[addr.Prefix64]*Span, 1)
		}
		c.iids[iid] = r
	} else {
		if ts < r.First {
			r.First = ts
		}
		if ts > r.Last {
			r.Last = ts
		}
	}
	r.Count++
	if r.P64s != nil {
		p := a.P64()
		if sp, ok := r.P64s[p]; ok {
			if ts < sp.First {
				sp.First = ts
			}
			if ts > sp.Last {
				sp.Last = ts
			}
		} else {
			r.P64s[p] = &Span{First: ts, Last: ts}
		}
	}
}

// NumAddrs returns the number of unique addresses observed.
func (c *Collector) NumAddrs() int { return len(c.addrs) }

// NumIIDs returns the number of unique IIDs observed.
func (c *Collector) NumIIDs() int { return len(c.iids) }

// TotalObservations returns the raw sighting count.
func (c *Collector) TotalObservations() uint64 { return c.total }

// Get returns the record for an address, or nil.
func (c *Collector) Get(a addr.Addr) *AddrRecord { return c.addrs[a] }

// GetIID returns the record for an IID, or nil.
func (c *Collector) GetIID(iid addr.IID) *IIDRecord { return c.iids[iid] }

// Addrs iterates every (address, record) pair. Iteration order is
// unspecified; the callback returning false stops early.
func (c *Collector) Addrs(fn func(a addr.Addr, r *AddrRecord) bool) {
	for a, r := range c.addrs {
		if !fn(a, r) {
			return
		}
	}
}

// IIDs iterates every (IID, record) pair.
func (c *Collector) IIDs(fn func(iid addr.IID, r *IIDRecord) bool) {
	for iid, r := range c.iids {
		if !fn(iid, r) {
			return
		}
	}
}

// EUI64IIDs iterates only EUI-64 IIDs (those with /64 tracking).
func (c *Collector) EUI64IIDs(fn func(iid addr.IID, r *IIDRecord) bool) {
	for iid, r := range c.iids {
		if r.P64s == nil {
			continue
		}
		if !fn(iid, r) {
			return
		}
	}
}

// AddressList materializes all observed addresses; prefer Addrs for large
// corpora.
func (c *Collector) AddressList() []addr.Addr {
	out := make([]addr.Addr, 0, len(c.addrs))
	for a := range c.addrs {
		out = append(out, a)
	}
	return out
}

// Merge folds another collector's observations into c, as if every
// sighting had been recorded here: first/last spans widen, counts add,
// server masks union, and per-/64 spans merge. The other collector is not
// modified. This is how per-vantage (or per-shard) collectors combine
// into the study corpus.
func (c *Collector) Merge(o *Collector) {
	for a, r := range o.addrs {
		if mine, ok := c.addrs[a]; ok {
			if r.First < mine.First {
				mine.First = r.First
			}
			if r.Last > mine.Last {
				mine.Last = r.Last
			}
			mine.Count += r.Count
			mine.Servers |= r.Servers
		} else {
			cp := *r
			c.addrs[a] = &cp
		}
	}
	for iid, r := range o.iids {
		mine, ok := c.iids[iid]
		if !ok {
			mine = &IIDRecord{First: r.First, Last: r.Last}
			if r.P64s != nil {
				mine.P64s = make(map[addr.Prefix64]*Span, len(r.P64s))
			}
			c.iids[iid] = mine
		} else {
			if r.First < mine.First {
				mine.First = r.First
			}
			if r.Last > mine.Last {
				mine.Last = r.Last
			}
		}
		mine.Count += r.Count
		if r.P64s != nil {
			if mine.P64s == nil {
				mine.P64s = make(map[addr.Prefix64]*Span, len(r.P64s))
			}
			for p, sp := range r.P64s {
				if msp, ok := mine.P64s[p]; ok {
					if sp.First < msp.First {
						msp.First = sp.First
					}
					if sp.Last > msp.Last {
						msp.Last = sp.Last
					}
				} else {
					cp := *sp
					mine.P64s[p] = &cp
				}
			}
		}
	}
	c.total += o.total
}

// Unique48s counts distinct /48 prefixes in the corpus (Table 1 column).
func (c *Collector) Unique48s() int {
	seen := make(map[addr.Prefix48]struct{})
	for a := range c.addrs {
		seen[a.P48()] = struct{}{}
	}
	return len(seen)
}

// Unique64s counts distinct /64 prefixes in the corpus.
func (c *Collector) Unique64s() int {
	seen := make(map[addr.Prefix64]struct{})
	for a := range c.addrs {
		seen[a.P64()] = struct{}{}
	}
	return len(seen)
}
