package collector

import (
	"encoding/hex"
	"testing"

	"hitlist6/internal/addr"
)

// goldenChecksum is the SHA-256 of the canonical encoding of the stream
// below, recorded against the seed's pointer-per-record layout. The
// canonical encoding is the collector's on-the-wire ground truth: any
// internal re-layout (the flat record slabs, the span-run slab) must
// reproduce it byte for byte, or every stored corpus fingerprint in the
// wild silently changes meaning.
const goldenChecksum = "dacb26a587b3fb747ed8e805e2a1462cbce86695d2ba510c37e2ecae9c6b72eb"

// splitmix64 is a tiny self-contained PRNG so the golden stream never
// depends on the standard library's generator internals.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// goldenStream generates a fixed, implementation-independent event
// stream exercising every record shape: repeated addresses, out-of-order
// timestamps, EUI-64 IIDs renumbering across /64s, non-EUI-64 IIDs
// shared by several addresses, and server indices at and beyond the cap.
func goldenStream() (addrs []addr.Addr, times []int64, servers []int) {
	const n = 5000
	base := int64(1643068800) // 25 Jan 2022, the study origin
	state := uint64(0x5eed)
	macs := make([]addr.MAC, 16)
	for i := range macs {
		v := splitmix64(&state)
		macs[i] = addr.MAC{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24), byte(v >> 32), byte(v >> 40)}
	}
	for i := 0; i < n; i++ {
		r := splitmix64(&state)
		hi := 0x2001_0db8_0000_0000 | (r>>32)&0xffff<<16 | r&0x7
		var a addr.Addr
		switch i % 5 {
		case 0, 1:
			// Random IID, small address pool to force repeats.
			a = addr.FromParts(hi, splitmix64(&state)%512)
		case 2:
			// EUI-64: one of 16 MACs wandering across /64s.
			mac := macs[r%16]
			a = addr.FromParts(hi, uint64(addr.EUI64FromMAC(mac)))
		case 3:
			// Same IID in many /64s without EUI-64 structure.
			a = addr.FromParts(hi, 0xdead_beef_0000_0001)
		default:
			a = addr.FromParts(hi, splitmix64(&state))
		}
		// Timestamps jitter backwards and forwards around a moving clock.
		ts := base + int64(i)*37 - int64(r%4096)
		server := int(r % 40) // exercises saturation above MaxServers
		if r%17 == 0 {
			server = -1 // unattributed
		}
		addrs = append(addrs, a)
		times = append(times, ts)
		servers = append(servers, server)
	}
	return
}

// TestCanonicalChecksumGolden pins WriteCanonical/Checksum output across
// storage-layout changes: the same event stream must hash to the value
// recorded against the seed layout.
func TestCanonicalChecksumGolden(t *testing.T) {
	addrs, times, servers := goldenStream()
	c := New()
	for i := range addrs {
		c.ObserveUnix(addrs[i], times[i], servers[i])
	}
	sum := c.Checksum()
	if got := hex.EncodeToString(sum[:]); got != goldenChecksum {
		t.Fatalf("canonical checksum drifted:\n got  %s\n want %s", got, goldenChecksum)
	}
}
