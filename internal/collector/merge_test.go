package collector

import (
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

func TestMergeEquivalentToSequential(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	mac := addr.MAC{0xf0, 0x02, 0x20, 1, 2, 3}
	eui := addr.EUI64FromMAC(mac)
	obs := []struct {
		a      addr.Addr
		at     time.Time
		server int
	}{
		{addr.MustParse("2001:db8::1"), base, 0},
		{addr.MustParse("2001:db8::1"), base.Add(time.Hour), 1},
		{addr.MustParse("2001:db8::2"), base.Add(2 * time.Hour), 2},
		{addr.FromParts(0x20010db8_00010000, uint64(eui)), base, 3},
		{addr.FromParts(0x20010db8_00020000, uint64(eui)), base.Add(48 * time.Hour), 4},
	}

	sequential := New()
	for _, o := range obs {
		sequential.Observe(o.a, o.at, o.server)
	}

	// Split across two collectors, interleaved, then merge.
	a, b := New(), New()
	for i, o := range obs {
		if i%2 == 0 {
			a.Observe(o.a, o.at, o.server)
		} else {
			b.Observe(o.a, o.at, o.server)
		}
	}
	a.Merge(b)

	if a.NumAddrs() != sequential.NumAddrs() || a.NumIIDs() != sequential.NumIIDs() {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			a.NumAddrs(), a.NumIIDs(), sequential.NumAddrs(), sequential.NumIIDs())
	}
	if a.TotalObservations() != sequential.TotalObservations() {
		t.Errorf("total: %d vs %d", a.TotalObservations(), sequential.TotalObservations())
	}
	sequential.Addrs(func(ad addr.Addr, want AddrRecord) bool {
		got, ok := a.Get(ad)
		if !ok || got != want {
			t.Errorf("record for %s: %+v vs %+v", ad, got, want)
		}
		return true
	})
	// EUI-64 /64 spans merged.
	wantIID, _ := sequential.GetIID(eui)
	gotIID, ok := a.GetIID(eui)
	if !ok || gotIID.NumP64s() != wantIID.NumP64s() {
		t.Fatalf("IID P64s: %d vs %d", gotIID.NumP64s(), wantIID.NumP64s())
	}
	wantIID.P64s(func(p addr.Prefix64, sp Span) bool {
		got, ok := gotIID.Span(p)
		if !ok || got != sp {
			t.Errorf("span for %s: %+v vs %+v", p, got, sp)
		}
		return true
	})
	// The merged canonical encoding settles it byte for byte.
	if a.Checksum() != sequential.Checksum() {
		t.Error("merged checksum differs from sequential")
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	src := New()
	src.Observe(addr.MustParse("2001:db8::9"), base, 5)
	dst := New()
	dst.Merge(src)
	if dst.NumAddrs() != 1 {
		t.Fatal("merge into empty lost data")
	}
	if _, ok := dst.Get(addr.MustParse("2001:db8::9")); !ok {
		t.Fatal("merged record missing")
	}
	// Source unchanged.
	if src.NumAddrs() != 1 {
		t.Fatal("source mutated")
	}
}

// TestMergeDeepCopies pins the aliasing contract: after Merge, the
// destination owns its records outright — continuing to write to the
// source must leave the destination's corpus untouched, spans included.
func TestMergeDeepCopies(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	mac := addr.MAC{0xf0, 0x02, 0x20, 7, 7, 7}
	eui := addr.EUI64FromMAC(mac)
	euiAddr := addr.FromParts(0x20010db8_00010000, uint64(eui))
	plain := addr.MustParse("2001:db8::9")

	src := New()
	src.Observe(plain, base, 5)
	src.Observe(euiAddr, base, 1)

	dst := New()
	dst.Merge(src)
	sum := dst.Checksum()
	wantAddr, _ := dst.Get(plain)
	wantView, _ := dst.GetIID(eui)
	wantSpan, _ := wantView.Span(euiAddr.P64())

	// Hammer the source: widen the existing records, stretch the EUI-64
	// span, renumber the IID into a new /64, and add fresh addresses.
	src.Observe(plain, base.Add(90*24*time.Hour), 9)
	src.Observe(euiAddr, base.Add(-time.Hour), 2)
	src.Observe(addr.FromParts(0x20010db8_00990000, uint64(eui)), base.Add(time.Hour), 3)
	src.Observe(addr.MustParse("2400:cb00::1"), base, 0)

	if dst.Checksum() != sum {
		t.Fatal("mutating the merge source changed the destination corpus")
	}
	if got, _ := dst.Get(plain); got != wantAddr {
		t.Errorf("address record aliased: %+v vs %+v", got, wantAddr)
	}
	gotView, _ := dst.GetIID(eui)
	if gotView.NumP64s() != 1 {
		t.Errorf("span chain aliased: %d /64s", gotView.NumP64s())
	}
	if got, _ := gotView.Span(euiAddr.P64()); got != wantSpan {
		t.Errorf("span aliased: %+v vs %+v", got, wantSpan)
	}
	if dst.NumAddrs() != 2 || dst.Unique48s() != 2 {
		t.Errorf("destination grew with the source: %d addrs, %d /48s",
			dst.NumAddrs(), dst.Unique48s())
	}

	// And the reverse direction: mutating the destination after the merge
	// must not leak back into the source.
	srcSum := src.Checksum()
	dst.Observe(plain, base.Add(400*24*time.Hour), 11)
	if src.Checksum() != srcSum {
		t.Error("mutating the merge destination changed the source corpus")
	}
}

// TestParallelReplayMatchesSerial is the scalability correctness check:
// a sharded parallel replay merged together must equal the serial corpus.
func TestParallelReplayMatchesSerial(t *testing.T) {
	cfg := simnet.DefaultConfig(13, 0.04)
	cfg.Days = 15
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	serial := New()
	w.GenerateQueries(func(q simnet.Query) {
		serial.Observe(q.Addr, q.Time, 0)
	})

	const shards = 4
	parts := make([]*Collector, shards)
	for i := range parts {
		parts[i] = New()
	}
	w.GenerateQueriesParallel(shards, func(shard int, q simnet.Query) {
		parts[shard].Observe(q.Addr, q.Time, 0)
	})
	merged := New()
	for _, p := range parts {
		merged.Merge(p)
	}

	if merged.NumAddrs() != serial.NumAddrs() {
		t.Fatalf("addrs: %d vs %d", merged.NumAddrs(), serial.NumAddrs())
	}
	if merged.TotalObservations() != serial.TotalObservations() {
		t.Fatalf("observations: %d vs %d", merged.TotalObservations(), serial.TotalObservations())
	}
	mismatches := 0
	serial.Addrs(func(a addr.Addr, want AddrRecord) bool {
		got, ok := merged.Get(a)
		if !ok || got.First != want.First || got.Last != want.Last || got.Count != want.Count {
			mismatches++
			return mismatches < 5
		}
		return true
	})
	if mismatches > 0 {
		t.Errorf("%d per-address record mismatches", mismatches)
	}
}
