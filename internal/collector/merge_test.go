package collector

import (
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

func TestMergeEquivalentToSequential(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	mac := addr.MAC{0xf0, 0x02, 0x20, 1, 2, 3}
	eui := addr.EUI64FromMAC(mac)
	obs := []struct {
		a      addr.Addr
		at     time.Time
		server int
	}{
		{addr.MustParse("2001:db8::1"), base, 0},
		{addr.MustParse("2001:db8::1"), base.Add(time.Hour), 1},
		{addr.MustParse("2001:db8::2"), base.Add(2 * time.Hour), 2},
		{addr.FromParts(0x20010db8_00010000, uint64(eui)), base, 3},
		{addr.FromParts(0x20010db8_00020000, uint64(eui)), base.Add(48 * time.Hour), 4},
	}

	sequential := New()
	for _, o := range obs {
		sequential.Observe(o.a, o.at, o.server)
	}

	// Split across two collectors, interleaved, then merge.
	a, b := New(), New()
	for i, o := range obs {
		if i%2 == 0 {
			a.Observe(o.a, o.at, o.server)
		} else {
			b.Observe(o.a, o.at, o.server)
		}
	}
	a.Merge(b)

	if a.NumAddrs() != sequential.NumAddrs() || a.NumIIDs() != sequential.NumIIDs() {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			a.NumAddrs(), a.NumIIDs(), sequential.NumAddrs(), sequential.NumIIDs())
	}
	if a.TotalObservations() != sequential.TotalObservations() {
		t.Errorf("total: %d vs %d", a.TotalObservations(), sequential.TotalObservations())
	}
	sequential.Addrs(func(ad addr.Addr, want *AddrRecord) bool {
		got := a.Get(ad)
		if got == nil || *got != *want {
			t.Errorf("record for %s: %+v vs %+v", ad, got, want)
		}
		return true
	})
	// EUI-64 /64 spans merged.
	wantIID := sequential.GetIID(eui)
	gotIID := a.GetIID(eui)
	if gotIID == nil || len(gotIID.P64s) != len(wantIID.P64s) {
		t.Fatalf("IID P64s: %+v vs %+v", gotIID, wantIID)
	}
	for p, sp := range wantIID.P64s {
		got := gotIID.P64s[p]
		if got == nil || *got != *sp {
			t.Errorf("span for %s: %+v vs %+v", p, got, sp)
		}
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	src := New()
	src.Observe(addr.MustParse("2001:db8::9"), base, 5)
	dst := New()
	dst.Merge(src)
	if dst.NumAddrs() != 1 || dst.Get(addr.MustParse("2001:db8::9")) == nil {
		t.Fatal("merge into empty lost data")
	}
	// Source unchanged.
	if src.NumAddrs() != 1 {
		t.Fatal("source mutated")
	}
	// Records are copies: mutating dst must not touch src.
	dst.Get(addr.MustParse("2001:db8::9")).Count = 99
	if src.Get(addr.MustParse("2001:db8::9")).Count == 99 {
		t.Error("merge shares record pointers with source")
	}
}

// TestParallelReplayMatchesSerial is the scalability correctness check:
// a sharded parallel replay merged together must equal the serial corpus.
func TestParallelReplayMatchesSerial(t *testing.T) {
	cfg := simnet.DefaultConfig(13, 0.04)
	cfg.Days = 15
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	serial := New()
	w.GenerateQueries(func(q simnet.Query) {
		serial.Observe(q.Addr, q.Time, 0)
	})

	const shards = 4
	parts := make([]*Collector, shards)
	for i := range parts {
		parts[i] = New()
	}
	w.GenerateQueriesParallel(shards, func(shard int, q simnet.Query) {
		parts[shard].Observe(q.Addr, q.Time, 0)
	})
	merged := New()
	for _, p := range parts {
		merged.Merge(p)
	}

	if merged.NumAddrs() != serial.NumAddrs() {
		t.Fatalf("addrs: %d vs %d", merged.NumAddrs(), serial.NumAddrs())
	}
	if merged.TotalObservations() != serial.TotalObservations() {
		t.Fatalf("observations: %d vs %d", merged.TotalObservations(), serial.TotalObservations())
	}
	mismatches := 0
	serial.Addrs(func(a addr.Addr, want *AddrRecord) bool {
		got := merged.Get(a)
		if got == nil || got.First != want.First || got.Last != want.Last || got.Count != want.Count {
			mismatches++
			return mismatches < 5
		}
		return true
	})
	if mismatches > 0 {
		t.Errorf("%d per-address record mismatches", mismatches)
	}
}
