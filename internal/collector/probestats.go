package collector

import "sort"

// AddrIndexStats describes the physical layout of the open-addressing
// address index: how far lookups actually walk from their home slot.
// The scenario matrix reads it under the adversarial collision profile,
// where every cluster address shares a home slot and probe runs grow
// with the cluster instead of staying O(1).
//
// Probe distances depend on insertion order and table history, which
// vary across shard counts and merge orders — these are observability
// numbers, never part of a determinism assertion.
type AddrIndexStats struct {
	// Slots is the table's current capacity; Used its occupied slots
	// (== NumAddrs).
	Slots, Used int
	// LoadFactor is Used/Slots (0 for an empty table).
	LoadFactor float64
	// MaxProbe is the longest probe sequence any present key requires:
	// the number of slots a Lookup inspects, home slot included.
	MaxProbe int
	// P50Probe/P99Probe are percentiles of that per-key probe length.
	P50Probe, P99Probe int
	// MeanProbe is its mean.
	MeanProbe float64
}

// AddrIndexStats measures the address index's probe-length
// distribution by walking every occupied slot back to its key's home
// position.
func (c *Collector) AddrIndexStats() AddrIndexStats {
	st := AddrIndexStats{Slots: len(c.addrIdx)}
	if len(c.addrIdx) == 0 {
		return st
	}
	mask := uint64(len(c.addrIdx) - 1)
	lengths := make([]int, 0, c.addrRecs.n)
	var sum uint64
	for pos, v := range c.addrIdx {
		if v == 0 {
			continue
		}
		home := c.addrRecs.at(v-1).key.Hash64() & mask
		// Linear probing with wraparound: the probe length is the
		// distance from home to the resting slot, inclusive.
		dist := int((uint64(pos)-home)&mask) + 1
		lengths = append(lengths, dist)
		sum += uint64(dist)
	}
	st.Used = len(lengths)
	if st.Used == 0 {
		return st
	}
	st.LoadFactor = float64(st.Used) / float64(st.Slots)
	sort.Ints(lengths)
	st.MaxProbe = lengths[len(lengths)-1]
	st.P50Probe = lengths[len(lengths)/2]
	st.P99Probe = lengths[len(lengths)*99/100]
	st.MeanProbe = float64(sum) / float64(st.Used)
	return st
}
