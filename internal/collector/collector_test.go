package collector

import (
	"testing"
	"time"

	"hitlist6/internal/addr"
)

var t0 = time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)

func TestObserveBasics(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::1")
	c.Observe(a, t0, 0)
	c.Observe(a, t0.Add(time.Hour), 3)
	c.Observe(a, t0.Add(2*time.Hour), 0)

	if c.NumAddrs() != 1 {
		t.Fatalf("NumAddrs: %d", c.NumAddrs())
	}
	r, ok := c.Get(a)
	if !ok {
		t.Fatal("record missing")
	}
	if r.Count != 3 {
		t.Errorf("count: %d", r.Count)
	}
	if r.Lifetime() != 2*time.Hour {
		t.Errorf("lifetime: %v", r.Lifetime())
	}
	if r.Servers != 0b1001 {
		t.Errorf("servers: %b", r.Servers)
	}
	if c.TotalObservations() != 3 {
		t.Errorf("total: %d", c.TotalObservations())
	}
	if _, ok := c.Get(addr.MustParse("2001:db8::2")); ok {
		t.Error("phantom record")
	}
}

func TestObserveOutOfOrderTimestamps(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::2")
	c.Observe(a, t0.Add(time.Hour), 0)
	c.Observe(a, t0, 0) // earlier sighting arrives later
	r, _ := c.Get(a)
	if r.First != t0.Unix() || r.Last != t0.Add(time.Hour).Unix() {
		t.Errorf("first/last: %d/%d", r.First, r.Last)
	}
}

func TestObservedOnceLifetimeZero(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::3")
	c.Observe(a, t0, 1)
	if r, _ := c.Get(a); r.Lifetime() != 0 {
		t.Errorf("lifetime of single sighting: %v", r.Lifetime())
	}
}

func TestIIDAggregation(t *testing.T) {
	c := New()
	// Same IID in two /64s (a renumbered EUI-64 host).
	mac := addr.MAC{0xf0, 0x02, 0x20, 1, 2, 3}
	iid := addr.EUI64FromMAC(mac)
	a1 := addr.FromParts(0x20010db8_00010000, uint64(iid))
	a2 := addr.FromParts(0x20010db8_00020000, uint64(iid))
	c.Observe(a1, t0, 0)
	c.Observe(a2, t0.Add(48*time.Hour), 0)

	r, ok := c.GetIID(iid)
	if !ok {
		t.Fatal("IID record missing")
	}
	if r.Count() != 2 {
		t.Errorf("count: %d", r.Count())
	}
	if r.Lifetime() != 48*time.Hour {
		t.Errorf("lifetime: %v", r.Lifetime())
	}
	if !r.Tracked() || r.NumP64s() != 2 {
		t.Fatalf("tracked=%v NumP64s=%d", r.Tracked(), r.NumP64s())
	}
	sp, ok := r.Span(a1.P64())
	if !ok || sp.First != t0.Unix() || sp.Last != t0.Unix() {
		t.Errorf("span for first /64: %+v (ok=%v)", sp, ok)
	}
	if _, ok := r.Span(addr.MustParse("2001:db8:9999::").P64()); ok {
		t.Error("span for unobserved /64")
	}
	// P64s visits both spans exactly once.
	seen := map[addr.Prefix64]Span{}
	r.P64s(func(p addr.Prefix64, sp Span) bool {
		if _, dup := seen[p]; dup {
			t.Errorf("duplicate span for %v", p)
		}
		seen[p] = sp
		return true
	})
	if len(seen) != 2 {
		t.Errorf("P64s visited %d spans", len(seen))
	}
}

func TestNonEUI64IIDNoP64Tracking(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::dead:beef:1234:5678")
	c.Observe(a, t0, 0)
	r, ok := c.GetIID(a.IID())
	if !ok {
		t.Fatal("IID record missing")
	}
	if r.Tracked() || r.NumP64s() != 0 {
		t.Error("non-EUI-64 IID should not carry /64 tracking")
	}
	n := 0
	r.P64s(func(addr.Prefix64, Span) bool { n++; return true })
	if n != 0 {
		t.Errorf("P64s on untracked IID visited %d", n)
	}
}

func TestEUI64IIDsIteration(t *testing.T) {
	c := New()
	mac := addr.MAC{0xf0, 0x02, 0x20, 9, 9, 9}
	eui := addr.FromParts(0x20010db8_00010000, uint64(addr.EUI64FromMAC(mac)))
	plain := addr.MustParse("2001:db8::1111:2222:3333:4444")
	c.Observe(eui, t0, 0)
	c.Observe(plain, t0, 0)

	n := 0
	c.EUI64IIDs(func(iid addr.IID, r IIDView) bool {
		n++
		if !iid.IsEUI64() {
			t.Errorf("non-EUI-64 IID in EUI64IIDs iteration")
		}
		if !r.Tracked() {
			t.Error("EUI64IIDs yielded untracked view")
		}
		return true
	})
	if n != 1 {
		t.Errorf("EUI64IIDs visited %d, want 1", n)
	}
}

func TestUniquePrefixCounts(t *testing.T) {
	c := New()
	c.Observe(addr.MustParse("2001:db8:1:1::a"), t0, 0)
	c.Observe(addr.MustParse("2001:db8:1:2::b"), t0, 0)
	c.Observe(addr.MustParse("2001:db8:2:1::c"), t0, 0)
	if got := c.Unique48s(); got != 2 {
		t.Errorf("Unique48s: %d", got)
	}
	if got := c.Unique64s(); got != 3 {
		t.Errorf("Unique64s: %d", got)
	}
	if got := len(c.AddressList()); got != 3 {
		t.Errorf("AddressList: %d", got)
	}
}

// recomputeUniques is the seed's throwaway-map path, kept as the
// reference for the incremental counters.
func recomputeUniques(c *Collector) (p48s, p64s int) {
	s48 := make(map[addr.Prefix48]struct{})
	s64 := make(map[addr.Prefix64]struct{})
	c.Addrs(func(a addr.Addr, _ AddrRecord) bool {
		s48[a.P48()] = struct{}{}
		s64[a.P64()] = struct{}{}
		return true
	})
	return len(s48), len(s64)
}

// TestUniqueCountsMatchRecompute pins the incremental distinct-/48 and
// /64 counters to the full recompute across observes, duplicate
// sightings, and merges.
func TestUniqueCountsMatchRecompute(t *testing.T) {
	check := func(label string, c *Collector) {
		t.Helper()
		w48, w64 := recomputeUniques(c)
		if c.Unique48s() != w48 || c.Unique64s() != w64 {
			t.Errorf("%s: incremental (%d,%d) vs recompute (%d,%d)",
				label, c.Unique48s(), c.Unique64s(), w48, w64)
		}
	}

	a := New()
	state := uint64(99)
	for i := 0; i < 2000; i++ {
		r := splitmix64(&state)
		// Small pools of /48s and IIDs force heavy prefix sharing.
		hi := 0x20010db8_00000000 | (r>>8)%64<<16 | r%8
		a.ObserveUnix(addr.FromParts(hi, splitmix64(&state)%256), 1000+int64(i), int(r%32))
	}
	check("after observes", a)

	b := New()
	for i := 0; i < 2000; i++ {
		r := splitmix64(&state)
		hi := 0x20010db8_00000000 | (r>>8)%64<<16 | r%8
		b.ObserveUnix(addr.FromParts(hi, splitmix64(&state)%256), 5000+int64(i), int(r%32))
	}
	check("second collector", b)

	a.Merge(b)
	check("after merge", a)
	a.Merge(New())
	check("after empty merge", a)

	empty := New()
	empty.Merge(b)
	check("merge into empty", empty)
}

func TestIterationEarlyStop(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.Observe(addr.FromParts(0x20010db8_00000000, uint64(i+1)), t0, 0)
	}
	n := 0
	c.Addrs(func(addr.Addr, AddrRecord) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Addrs early stop: %d", n)
	}
	n = 0
	c.IIDs(func(addr.IID, IIDView) bool { n++; return false })
	if n != 1 {
		t.Errorf("IIDs early stop: %d", n)
	}
	n = 0
	c.AddrsCanonical(func(addr.Addr, AddrRecord) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("AddrsCanonical early stop: %d", n)
	}
}

func TestAddrsCanonicalOrder(t *testing.T) {
	c := New()
	for i := 0; i < 50; i++ {
		state := uint64(i) * 0x9e3779b97f4a7c15
		c.Observe(addr.FromParts(splitmix64(&state), splitmix64(&state)), t0, 0)
	}
	var prev addr.Addr
	n := 0
	c.AddrsCanonical(func(a addr.Addr, r AddrRecord) bool {
		if n > 0 {
			if prev.Hi() > a.Hi() || (prev.Hi() == a.Hi() && prev.Lo() >= a.Lo()) {
				t.Fatalf("canonical order violated: %s then %s", prev, a)
			}
		}
		if r.Count == 0 {
			t.Fatalf("empty record for %s", a)
		}
		prev = a
		n++
		return true
	})
	if n != c.NumAddrs() {
		t.Errorf("visited %d of %d", n, c.NumAddrs())
	}
}

func TestServerIndexClamping(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::9")
	c.Observe(a, t0, 40) // above bit 31: clamps to bit 31
	c.Observe(a, t0, -1) // negative: no bit
	r, _ := c.Get(a)
	if r.Servers != 1<<31 {
		t.Errorf("servers: %b", r.Servers)
	}
}

func TestMemoryFootprintGrows(t *testing.T) {
	c := New()
	if c.MemoryFootprint() != 0 {
		t.Errorf("empty collector footprint %d", c.MemoryFootprint())
	}
	before := c.MemoryFootprint()
	for i := 0; i < 1000; i++ {
		c.Observe(addr.FromParts(0x20010db8_00000000|uint64(i)<<16, uint64(i)), t0, 0)
	}
	after := c.MemoryFootprint()
	if after <= before {
		t.Errorf("footprint did not grow: %d -> %d", before, after)
	}
	// Sanity bound: the flat layout should stay well under ~400 bytes
	// per unique address at this scale, slab-growth slack included.
	if perAddr := after / 1000; perAddr > 400 {
		t.Errorf("footprint %d bytes/addr implausibly high", perAddr)
	}
}
