package collector

import (
	"testing"
	"time"

	"hitlist6/internal/addr"
)

var t0 = time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)

func TestObserveBasics(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::1")
	c.Observe(a, t0, 0)
	c.Observe(a, t0.Add(time.Hour), 3)
	c.Observe(a, t0.Add(2*time.Hour), 0)

	if c.NumAddrs() != 1 {
		t.Fatalf("NumAddrs: %d", c.NumAddrs())
	}
	r := c.Get(a)
	if r == nil {
		t.Fatal("record missing")
	}
	if r.Count != 3 {
		t.Errorf("count: %d", r.Count)
	}
	if r.Lifetime() != 2*time.Hour {
		t.Errorf("lifetime: %v", r.Lifetime())
	}
	if r.Servers != 0b1001 {
		t.Errorf("servers: %b", r.Servers)
	}
	if c.TotalObservations() != 3 {
		t.Errorf("total: %d", c.TotalObservations())
	}
}

func TestObserveOutOfOrderTimestamps(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::2")
	c.Observe(a, t0.Add(time.Hour), 0)
	c.Observe(a, t0, 0) // earlier sighting arrives later
	r := c.Get(a)
	if r.First != t0.Unix() || r.Last != t0.Add(time.Hour).Unix() {
		t.Errorf("first/last: %d/%d", r.First, r.Last)
	}
}

func TestObservedOnceLifetimeZero(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::3")
	c.Observe(a, t0, 1)
	if lt := c.Get(a).Lifetime(); lt != 0 {
		t.Errorf("lifetime of single sighting: %v", lt)
	}
}

func TestIIDAggregation(t *testing.T) {
	c := New()
	// Same IID in two /64s (a renumbered EUI-64 host).
	mac := addr.MAC{0xf0, 0x02, 0x20, 1, 2, 3}
	iid := addr.EUI64FromMAC(mac)
	a1 := addr.FromParts(0x20010db8_00010000, uint64(iid))
	a2 := addr.FromParts(0x20010db8_00020000, uint64(iid))
	c.Observe(a1, t0, 0)
	c.Observe(a2, t0.Add(48*time.Hour), 0)

	r := c.GetIID(iid)
	if r == nil {
		t.Fatal("IID record missing")
	}
	if r.Count != 2 {
		t.Errorf("count: %d", r.Count)
	}
	if r.Lifetime() != 48*time.Hour {
		t.Errorf("lifetime: %v", r.Lifetime())
	}
	if len(r.P64s) != 2 {
		t.Fatalf("P64s: %d", len(r.P64s))
	}
	sp := r.P64s[a1.P64()]
	if sp == nil || sp.First != t0.Unix() || sp.Last != t0.Unix() {
		t.Errorf("span for first /64: %+v", sp)
	}
}

func TestNonEUI64IIDNoP64Tracking(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::dead:beef:1234:5678")
	c.Observe(a, t0, 0)
	r := c.GetIID(a.IID())
	if r == nil {
		t.Fatal("IID record missing")
	}
	if r.P64s != nil {
		t.Error("non-EUI-64 IID should not carry /64 tracking")
	}
}

func TestEUI64IIDsIteration(t *testing.T) {
	c := New()
	mac := addr.MAC{0xf0, 0x02, 0x20, 9, 9, 9}
	eui := addr.FromParts(0x20010db8_00010000, uint64(addr.EUI64FromMAC(mac)))
	plain := addr.MustParse("2001:db8::1111:2222:3333:4444")
	c.Observe(eui, t0, 0)
	c.Observe(plain, t0, 0)

	n := 0
	c.EUI64IIDs(func(iid addr.IID, r *IIDRecord) bool {
		n++
		if !iid.IsEUI64() {
			t.Errorf("non-EUI-64 IID in EUI64IIDs iteration")
		}
		return true
	})
	if n != 1 {
		t.Errorf("EUI64IIDs visited %d, want 1", n)
	}
}

func TestUniquePrefixCounts(t *testing.T) {
	c := New()
	c.Observe(addr.MustParse("2001:db8:1:1::a"), t0, 0)
	c.Observe(addr.MustParse("2001:db8:1:2::b"), t0, 0)
	c.Observe(addr.MustParse("2001:db8:2:1::c"), t0, 0)
	if got := c.Unique48s(); got != 2 {
		t.Errorf("Unique48s: %d", got)
	}
	if got := c.Unique64s(); got != 3 {
		t.Errorf("Unique64s: %d", got)
	}
	if got := len(c.AddressList()); got != 3 {
		t.Errorf("AddressList: %d", got)
	}
}

func TestIterationEarlyStop(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.Observe(addr.FromParts(0x20010db8_00000000, uint64(i+1)), t0, 0)
	}
	n := 0
	c.Addrs(func(addr.Addr, *AddrRecord) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Addrs early stop: %d", n)
	}
	n = 0
	c.IIDs(func(addr.IID, *IIDRecord) bool { n++; return false })
	if n != 1 {
		t.Errorf("IIDs early stop: %d", n)
	}
}

func TestServerIndexClamping(t *testing.T) {
	c := New()
	a := addr.MustParse("2001:db8::9")
	c.Observe(a, t0, 40) // above bit 31: clamps to bit 31
	c.Observe(a, t0, -1) // negative: no bit
	r := c.Get(a)
	if r.Servers != 1<<31 {
		t.Errorf("servers: %b", r.Servers)
	}
}
