package collector

import (
	"testing"

	"hitlist6/internal/addr"
)

// mineColliding returns n addresses sharing the low `bits` of their
// Hash64 — one home slot on any table up to 2^bits slots — by scanning
// a deterministic counter.
func mineColliding(n, bits int) []addr.Addr {
	mask := uint64(1)<<bits - 1
	target := addr.FromParts(0x2001_0db8_0000_0000, 0).Hash64() & mask
	out := make([]addr.Addr, 0, n)
	for c := uint64(0); len(out) < n; c++ {
		a := addr.FromParts(0x2001_0db8_0000_0000|c>>32, c<<32|c)
		if a.Hash64()&mask == target {
			out = append(out, a)
		}
	}
	return out
}

func TestAddrIndexStatsEmpty(t *testing.T) {
	st := New().AddrIndexStats()
	if st.Slots != 0 || st.Used != 0 || st.MaxProbe != 0 {
		t.Fatalf("empty collector stats = %+v, want zeros", st)
	}
}

// TestAddrIndexStatsUniform checks the accounting on a well-spread
// population: every key counted, load factor under the grow threshold,
// and short probes.
func TestAddrIndexStatsUniform(t *testing.T) {
	c := New()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		c.ObserveUnix(addr.FromParts(0x2001_0db8_0000_0000+i*0x9e3779b9, i*0x85ebca6b+1), 1_600_000_000, 0)
	}
	st := c.AddrIndexStats()
	if st.Used != c.NumAddrs() {
		t.Fatalf("Used = %d, NumAddrs = %d", st.Used, c.NumAddrs())
	}
	if st.LoadFactor <= 0 || st.LoadFactor > 0.75 {
		t.Fatalf("load factor %.3f outside (0, 0.75]", st.LoadFactor)
	}
	if st.P50Probe < 1 || st.P99Probe < st.P50Probe || st.MaxProbe < st.P99Probe {
		t.Fatalf("percentiles out of order: %+v", st)
	}
	if st.MeanProbe < 1 {
		t.Fatalf("mean probe %.2f < 1", st.MeanProbe)
	}
	// A uniform population at <=3/4 load keeps median probes at the
	// theoretical floor.
	if st.P50Probe > 2 {
		t.Fatalf("uniform population p50 probe = %d, want <= 2", st.P50Probe)
	}
}

// TestAddrIndexStatsCollisionCluster is the layout the stats exist to
// expose: keys sharing one home slot force probe runs that grow with
// the cluster, which the max/p99 must reflect.
func TestAddrIndexStatsCollisionCluster(t *testing.T) {
	c := New()
	const cluster = 96
	for _, a := range mineColliding(cluster, 14) {
		c.ObserveUnix(a, 1_600_000_000, 0)
	}
	st := c.AddrIndexStats()
	if st.Used != cluster {
		t.Fatalf("Used = %d, want %d", st.Used, cluster)
	}
	// All keys in one home slot: the k-th inserted key probes k slots,
	// so the max equals the cluster size and p50 sits near half of it.
	if st.MaxProbe != cluster {
		t.Fatalf("MaxProbe = %d, want %d (single shared home slot)", st.MaxProbe, cluster)
	}
	if st.P50Probe < cluster/4 {
		t.Fatalf("P50Probe = %d, want >= %d under full collision", st.P50Probe, cluster/4)
	}
}
