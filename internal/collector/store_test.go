package collector

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/addr"
)

func TestServerBitSaturation(t *testing.T) {
	cases := []struct {
		server int
		want   uint32
	}{
		{-5, 0},
		{-1, 0},
		{0, 1},
		{26, 1 << 26},
		{MaxServers - 1, 1 << (MaxServers - 1)},
		{MaxServers, 1 << (MaxServers - 1)},      // saturates, no silent shift-out
		{MaxServers + 40, 1 << (MaxServers - 1)}, // far beyond: same top bit
	}
	for _, c := range cases {
		if got := ServerBit(c.server); got != c.want {
			t.Errorf("ServerBit(%d) = %#x, want %#x", c.server, got, c.want)
		}
	}

	// Observe must agree with ServerBit at and beyond the cap.
	col := New()
	a := addr.MustParse("2001:db8::7")
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	col.Observe(a, base, MaxServers+3)
	col.Observe(a, base, -1)
	if r, _ := col.Get(a); r.Servers != 1<<(MaxServers-1) {
		t.Errorf("Servers mask %#x, want top bit only", r.Servers)
	}
}

func TestStoreMergesAndReads(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC).Unix()
	s := NewStore()
	if s.NumAddrs() != 0 || s.TotalObservations() != 0 {
		t.Fatal("new store not empty")
	}

	shard1, shard2 := New(), New()
	shard1.ObserveUnix(addr.MustParse("2001:db8::1"), base, 0)
	shard1.ObserveUnix(addr.MustParse("2001:db8::2"), base+10, 1)
	shard2.ObserveUnix(addr.MustParse("2001:db8::1"), base+20, 2)

	s.ApplyShard(shard1)
	s.ApplyShard(shard2)
	s.ApplyShard(nil) // no-op

	if s.NumAddrs() != 2 || s.TotalObservations() != 3 || s.Merges() != 2 {
		t.Errorf("addrs=%d obs=%d merges=%d", s.NumAddrs(), s.TotalObservations(), s.Merges())
	}
	s.View(func(c *Collector) {
		r, ok := c.Get(addr.MustParse("2001:db8::1"))
		if !ok || r.Count != 2 || r.Servers != ServerBit(0)|ServerBit(2) {
			t.Errorf("merged record: %+v", r)
		}
	})

	detached := s.Detach()
	if detached.NumAddrs() != 2 {
		t.Error("detached corpus incomplete")
	}
	if s.NumAddrs() != 0 || s.Merges() != 0 {
		t.Error("store not reset after Detach")
	}
}

// TestStoreReuseAfterDetach pins the Detach contract: the store resets to
// an empty-but-live state, so a daemon can hand one collection run to the
// analysis layer and keep ingesting into the same store.
func TestStoreReuseAfterDetach(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC).Unix()
	s := NewStore()
	first := New()
	first.ObserveUnix(addr.MustParse("2001:db8::1"), base, 0)
	s.ApplyShard(first)

	detached := s.Detach()
	if detached.NumAddrs() != 1 {
		t.Fatal("detached corpus incomplete")
	}

	// The detached collector is the caller's: keep using it.
	detached.ObserveUnix(addr.MustParse("2001:db8::2"), base+1, 1)
	if detached.NumAddrs() != 2 {
		t.Error("detached collector not writable")
	}

	// The store must accept a fresh round of shards and views.
	second := New()
	second.ObserveUnix(addr.MustParse("2400:cb00::1"), base+2, 2)
	s.ApplyShard(second)
	if s.NumAddrs() != 1 || s.Merges() != 1 || s.TotalObservations() != 1 {
		t.Errorf("post-detach store: addrs=%d merges=%d obs=%d",
			s.NumAddrs(), s.Merges(), s.TotalObservations())
	}
	s.View(func(c *Collector) {
		if _, ok := c.Get(addr.MustParse("2001:db8::1")); ok {
			t.Error("detached corpus leaked back into the store")
		}
		if _, ok := c.Get(addr.MustParse("2400:cb00::1")); !ok {
			t.Error("post-detach shard missing from view")
		}
	})

	// Writes to the detached collector must never surface in the store
	// (and vice versa): Detach is a handoff, not a shared view.
	sum := s.Checksum()
	detached.ObserveUnix(addr.MustParse("2001:db8::3"), base+3, 3)
	if s.Checksum() != sum {
		t.Error("detached collector aliases the store")
	}

	if d2 := s.Detach(); d2.NumAddrs() != 1 {
		t.Errorf("second detach: %d addrs", d2.NumAddrs())
	}
	if s.NumAddrs() != 0 {
		t.Error("store not reset after second Detach")
	}
}

// TestStoreConcurrentAccess drives one writer against several readers;
// meaningful under -race.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.NumAddrs()
				_ = s.NumIIDs()
				_ = s.TotalObservations()
				s.View(func(c *Collector) {
					c.Addrs(func(addr.Addr, AddrRecord) bool { return false })
				})
			}
		}()
	}
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC).Unix()
	for i := 0; i < 50; i++ {
		part := New()
		part.ObserveUnix(addr.FromParts(0x20010db8<<32, uint64(i)), base+int64(i), i%MaxServers)
		s.ApplyShard(part)
	}
	close(stop)
	readers.Wait()
	if s.NumAddrs() != 50 {
		t.Errorf("addrs %d, want 50", s.NumAddrs())
	}
}

func TestCanonicalEncodingOrderIndependent(t *testing.T) {
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	mac := addr.MAC{0xf0, 0x02, 0x20, 9, 8, 7}
	eui := addr.EUI64FromMAC(mac)
	obs := []struct {
		a      addr.Addr
		at     time.Time
		server int
	}{
		{addr.MustParse("2001:db8::1"), base, 0},
		{addr.MustParse("2001:db8::2"), base.Add(time.Hour), 3},
		{addr.FromParts(0x20010db8_00010000, uint64(eui)), base, 5},
		{addr.FromParts(0x20010db8_00020000, uint64(eui)), base.Add(24 * time.Hour), 6},
		{addr.MustParse("2001:db8::1"), base.Add(2 * time.Hour), 1},
	}

	forward, reverse := New(), New()
	for _, o := range obs {
		forward.Observe(o.a, o.at, o.server)
	}
	for i := len(obs) - 1; i >= 0; i-- {
		reverse.Observe(obs[i].a, obs[i].at, obs[i].server)
	}

	var fb, rb bytes.Buffer
	if err := forward.WriteCanonical(&fb); err != nil {
		t.Fatal(err)
	}
	if err := reverse.WriteCanonical(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb.Bytes(), rb.Bytes()) {
		t.Error("canonical encoding depends on insertion order")
	}
	if forward.Checksum() != reverse.Checksum() {
		t.Error("checksums differ across insertion orders")
	}

	// A single extra sighting must change the checksum.
	reverse.Observe(addr.MustParse("2001:db8::3"), base, 0)
	if forward.Checksum() == reverse.Checksum() {
		t.Error("checksum blind to an extra observation")
	}
}
