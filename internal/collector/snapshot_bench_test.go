package collector

import (
	"bytes"
	"sync"
	"testing"

	"hitlist6/internal/addr"
)

// The snapshot benchmarks treat the on-disk format like an index whose
// performance is a feature (the db-index-evaluation model): snapshot
// and restore throughput in MB/s over the paper-shaped 1M-unique
// stream, and restore versus re-ingesting the raw event stream — the
// ratio that justifies checkpoints existing at all. Compare
// BenchmarkRestore's path=restore and path=reingest rows in the
// bench-results artifact: restore must stay an order of magnitude
// ahead, since it replays no merge logic — a bulk slab load plus one
// index rebuild.

var (
	benchSnapOnce    sync.Once
	benchSnapRaw     []byte
	benchSnapStream  []benchEvent
	benchSnapUniques int
)

// restoreBenchStream materializes the checkpoint-shaped workload: 1M
// unique addresses sighted ~6 times each. The repeat factor is the
// point — a checkpointed corpus stands in for a stream accumulated
// over weeks (the paper's window is 218 days; six sightings per
// address is conservative by orders of magnitude), and re-ingesting
// pays the full observe path per sighting while restore pays per
// unique record. collectorBenchStream stays untouched: its ~20%-repeat
// shape is pinned by BenchmarkCollectorMemory's artifact trajectory.
func restoreBenchStream() ([]benchEvent, int) {
	const (
		uniques = 1 << 20
		repeats = 6
	)
	state := uint64(0x5eed1157)
	addrs := make([]addr.Addr, uniques)
	macs := make([]addr.MAC, 1<<12)
	for i := range macs {
		v := splitmix64(&state)
		macs[i] = addr.MAC{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24), byte(v >> 32), byte(v >> 40)}
	}
	p64Of := func(id uint64) uint64 {
		id &= 0xffff
		return 0x20010db8_00000000 | (id>>2)<<16 | id&3
	}
	seen := make(map[addr.Addr]struct{}, uniques)
	for i := 0; i < uniques; {
		r := splitmix64(&state)
		var a addr.Addr
		if r%25 == 0 {
			a = addr.FromParts(p64Of(r>>16), uint64(addr.EUI64FromMAC(macs[r%uint64(len(macs))])))
		} else {
			a = addr.FromParts(p64Of(r>>16), splitmix64(&state))
		}
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		addrs[i] = a
		i++
	}
	base := int64(1643068800)
	events := make([]benchEvent, 0, uniques*repeats)
	for rep := 0; rep < repeats; rep++ {
		for i, a := range addrs {
			r := splitmix64(&state)
			events = append(events, benchEvent{
				a:      a,
				ts:     base + int64(rep)*86400*30 + int64(i%86400),
				server: int(r % 27),
			})
		}
	}
	return events, uniques
}

// benchSnapshot materializes the 1M-address corpus and its snapshot
// once, shared across the snapshot benchmarks.
func benchSnapshot(b *testing.B) ([]byte, []benchEvent, int) {
	b.Helper()
	benchSnapOnce.Do(func() {
		benchSnapStream, benchSnapUniques = restoreBenchStream()
		c := New()
		for _, ev := range benchSnapStream {
			c.ObserveUnix(ev.a, ev.ts, ev.server)
		}
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			panic(err)
		}
		benchSnapRaw = buf.Bytes()
	})
	return benchSnapRaw, benchSnapStream, benchSnapUniques
}

// BenchmarkSnapshot measures serialization throughput of the 1M-address
// corpus (MB/s is the headline metric).
func BenchmarkSnapshot(b *testing.B) {
	raw, events, uniques := benchSnapshot(b)
	c := New()
	for _, ev := range events {
		c.ObserveUnix(ev.a, ev.ts, ev.server)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(len(raw))
		if err := c.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(raw))/float64(uniques), "snap_B/addr")
}

// BenchmarkRestore pits OpenSnapshot against re-ingesting the stream
// the snapshot came from: the ≥10x claim checkpoints rest on. Both
// paths produce the identical corpus (asserted once, outside the
// timing).
func BenchmarkRestore(b *testing.B) {
	raw, events, uniques := benchSnapshot(b)

	restored, err := OpenSnapshot(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	reingested := New()
	for _, ev := range events {
		reingested.ObserveUnix(ev.a, ev.ts, ev.server)
	}
	if restored.Checksum() != reingested.Checksum() {
		b.Fatal("restore and re-ingest disagree — benchmark would compare different corpora")
	}

	b.Run("path=restore", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := OpenSnapshot(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if c.NumAddrs() != uniques {
				b.Fatalf("restored %d addrs, want %d", c.NumAddrs(), uniques)
			}
		}
		b.ReportMetric(float64(uniques)*float64(b.N)/b.Elapsed().Seconds(), "addrs/sec")
	})
	b.Run("path=reingest", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := New()
			for _, ev := range events {
				c.ObserveUnix(ev.a, ev.ts, ev.server)
			}
			if c.NumAddrs() != uniques {
				b.Fatalf("reingested %d addrs, want %d", c.NumAddrs(), uniques)
			}
		}
		b.ReportMetric(float64(uniques)*float64(b.N)/b.Elapsed().Seconds(), "addrs/sec")
	})
}

// BenchmarkAbsorb compares the chunk-adopting merge against the
// deep-copying record merge across the shapes ApplyShard sees.
// shape=disjoint partitions the stream by IID value, so donor and
// destination share no address or IID and Absorb adopts whole chunks;
// shape=colliding partitions by address hash, where cross-/64 EUI-64
// IIDs collide and Absorb pays its disjointness probe before falling
// back to record merging — the honest overhead number.
func BenchmarkAbsorb(b *testing.B) {
	events, _ := collectorBenchStream()
	builders := map[string]func(part uint64) *Collector{
		"disjoint": func(part uint64) *Collector {
			c := New()
			for _, ev := range events {
				if uint64(ev.a.IID())%2 == part {
					c.ObserveUnix(ev.a, ev.ts, ev.server)
				}
			}
			return c
		},
		"colliding": func(part uint64) *Collector {
			c := New()
			for _, ev := range events {
				if ev.a.Hash64()%2 == part {
					c.ObserveUnix(ev.a, ev.ts, ev.server)
				}
			}
			return c
		},
	}
	for _, shape := range []string{"disjoint", "colliding"} {
		build := builders[shape]
		b.Run("shape="+shape+"/path=absorb", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst, donor := build(0), build(1)
				b.StartTimer()
				dst.Absorb(donor)
			}
		})
		b.Run("shape="+shape+"/path=merge", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dst, donor := build(0), build(1)
				b.StartTimer()
				dst.Merge(donor)
			}
		})
	}
}
