package collector

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"hitlist6/internal/addr"
	"hitlist6/internal/snapfmt"
)

// The snapshot format is the collector's durable form: the record
// arenas, the promoted-IID arena, the span slab and the singleton-IID
// reference list, written as length-prefixed CRC-checked sections (see
// internal/snapfmt). The slabs go out verbatim — same entries, same
// indices — so restore is a bulk slab load plus an index-table rebuild,
// not N re-inserts: span chains and singleton references stay valid
// as written, and the open-addressing tables (which the snapshot omits;
// that is the compaction) are rebuilt once, sized exactly for the
// restored record counts. The invariant pinned by the golden fixture
// and the round-trip fuzz target: a restored collector's Checksum
// equals the original's.
//
// Version history:
//
//	1: sections meta(1), addrs(2), iids(3), spans(4), singletons(5),
//	   p48s(6), p64s(7).
//
// Unknown versions and unknown/missing/reordered sections are errors —
// a reader never guesses at a corpus. The prefix-set sections carry
// derived data (recomputable from the address slab) purely as a
// restore-speed trade: loading ~10^5 distinct prefixes beats
// re-deriving them with two set inserts per address.
//
//lint:durable-path snapshots are the collector's crash-recovery state
const (
	snapMagic   = "h6corps1"
	snapVersion = 1

	secMeta       = 1
	secAddrs      = 2
	secIIDs       = 3
	secSpans      = 4
	secSingletons = 5
	secP48s       = 6
	secP64s       = 7

	metaWire      = 40 // total, addrN, iidN, spanN, singletonN
	addrEntryWire = 40 // key[16], first, last i64, count, servers u32
	iidEntryWire  = 36 // key u64, first, last i64, count, spans, p64n u32
	spanEntryWire = 28 // p64 u64, first, last i64, next u32
	singletonWire = 4  // address-slab index u32
	prefixWire    = 8  // prefix u64, strictly ascending

	// maxSlabIndex bounds every slab count a snapshot may declare:
	// indices are uint32s with the top bit reserved for promotedTag and
	// +1 biasing in the tables.
	maxSlabIndex = promotedTag - 2
)

// wireBatch is how many entries marshal per Write call: large enough to
// amortize the framing layer, small enough that a lying section size
// cannot make the reader allocate ahead of the bytes actually present.
const wireBatch = 1024

// Snapshot writes the collector's durable encoding. The stream is
// self-delimiting: it can be embedded back to back with other streams
// on one writer (study checkpoints do). Snapshot does not buffer — hand
// it a *bufio.Writer (or equivalent) when writing to a raw file.
func (c *Collector) Snapshot(w io.Writer) error {
	sw, err := snapfmt.NewWriter(w, snapMagic, snapVersion)
	if err != nil {
		return err
	}

	singletons := c.iidUsed - c.iidRecs.n

	if err := sw.Begin(secMeta, metaWire); err != nil {
		return err
	}
	var meta [metaWire]byte
	binary.BigEndian.PutUint64(meta[0:], c.total)
	binary.BigEndian.PutUint64(meta[8:], uint64(c.addrRecs.n))
	binary.BigEndian.PutUint64(meta[16:], uint64(c.iidRecs.n))
	binary.BigEndian.PutUint64(meta[24:], uint64(c.spans.n))
	binary.BigEndian.PutUint64(meta[32:], uint64(singletons))
	if _, err := sw.Write(meta[:]); err != nil {
		return err
	}
	if err := sw.End(); err != nil {
		return err
	}

	buf := make([]byte, 0, wireBatch*addrEntryWire)

	if err := sw.Begin(secAddrs, uint64(c.addrRecs.n)*addrEntryWire); err != nil {
		return err
	}
	for i := uint32(0); i < c.addrRecs.n; i++ {
		e := c.addrRecs.at(i)
		buf = append(buf, e.key[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.rec.First))
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.rec.Last))
		buf = binary.BigEndian.AppendUint32(buf, e.rec.Count)
		buf = binary.BigEndian.AppendUint32(buf, e.rec.Servers)
		if buf = flushBatch(sw, buf, &err); err != nil {
			return err
		}
	}
	if err := endSection(sw, buf); err != nil {
		return err
	}

	buf = buf[:0]
	if err := sw.Begin(secIIDs, uint64(c.iidRecs.n)*iidEntryWire); err != nil {
		return err
	}
	for i := uint32(0); i < c.iidRecs.n; i++ {
		e := c.iidRecs.at(i)
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.key))
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.first))
		buf = binary.BigEndian.AppendUint64(buf, uint64(e.last))
		buf = binary.BigEndian.AppendUint32(buf, e.count)
		buf = binary.BigEndian.AppendUint32(buf, e.spans)
		buf = binary.BigEndian.AppendUint32(buf, e.p64n)
		if buf = flushBatch(sw, buf, &err); err != nil {
			return err
		}
	}
	if err := endSection(sw, buf); err != nil {
		return err
	}

	buf = buf[:0]
	if err := sw.Begin(secSpans, uint64(c.spans.n)*spanEntryWire); err != nil {
		return err
	}
	for i := uint32(0); i < c.spans.n; i++ {
		n := c.spans.at(i)
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.p64))
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.first))
		buf = binary.BigEndian.AppendUint64(buf, uint64(n.last))
		buf = binary.BigEndian.AppendUint32(buf, n.next)
		if buf = flushBatch(sw, buf, &err); err != nil {
			return err
		}
	}
	if err := endSection(sw, buf); err != nil {
		return err
	}

	buf = buf[:0]
	if err := sw.Begin(secSingletons, uint64(singletons)*singletonWire); err != nil {
		return err
	}
	for _, v := range c.iidIdx {
		if v == 0 || (v-1)&promotedTag != 0 {
			continue
		}
		buf = binary.BigEndian.AppendUint32(buf, v-1)
		if buf = flushBatch(sw, buf, &err); err != nil {
			return err
		}
	}
	if err := endSection(sw, buf); err != nil {
		return err
	}

	if err := writePrefixSet(sw, secP48s, &c.p48s); err != nil {
		return err
	}
	if err := writePrefixSet(sw, secP64s, &c.p64s); err != nil {
		return err
	}

	return sw.Close()
}

// writePrefixSet encodes one distinct-prefix set as a strictly
// ascending u64 list (sorted for determinism and so the reader can
// reject duplicates by ordering alone).
func writePrefixSet(sw *snapfmt.Writer, id uint32, s *u64set) error {
	vals := make([]uint64, 0, s.len())
	s.each(func(v uint64) { vals = append(vals, v) })
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if err := sw.Begin(id, uint64(len(vals))*prefixWire); err != nil {
		return err
	}
	buf := make([]byte, 0, wireBatch*addrEntryWire)
	var err error
	for _, v := range vals {
		buf = binary.BigEndian.AppendUint64(buf, v)
		if buf = flushBatch(sw, buf, &err); err != nil {
			return err
		}
	}
	return endSection(sw, buf)
}

// flushBatch writes buf through when it reaches the batch size,
// returning the (possibly reset) buffer; on error it parks the error in
// *errp for the caller's guard clause.
func flushBatch(sw *snapfmt.Writer, buf []byte, errp *error) []byte {
	if len(buf) < wireBatch*addrEntryWire/2 {
		return buf
	}
	if _, err := sw.Write(buf); err != nil {
		*errp = err
		return buf
	}
	return buf[:0]
}

// endSection drains the final partial batch and closes the section.
func endSection(sw *snapfmt.Writer, buf []byte) error {
	if len(buf) > 0 {
		if _, err := sw.Write(buf); err != nil {
			return err
		}
	}
	return sw.End()
}

// OpenSnapshot restores a collector from a Snapshot stream. It reads
// exactly the stream's bytes, so further streams may follow on the same
// reader. Damage of any kind — truncation, bit flips, structural lies —
// yields an error, never a panic and never a silently corrupt corpus:
// every section is CRC-checked, every slab reference is bounds-checked,
// span chains are walked for exact node accounting, and duplicate keys
// are rejected during the index rebuild. OpenSnapshot does not buffer —
// hand it a *bufio.Reader when reading a raw file.
func OpenSnapshot(r io.Reader) (*Collector, error) {
	sr, err := snapfmt.NewReader(r, snapMagic)
	if err != nil {
		return nil, fmt.Errorf("collector: snapshot: %w", err)
	}
	if v := sr.Version(); v != snapVersion {
		return nil, fmt.Errorf("collector: snapshot version %d unsupported (have %d)", v, snapVersion)
	}

	// meta
	if err := expectSection(sr, secMeta, metaWire); err != nil {
		return nil, err
	}
	var meta [metaWire]byte
	if _, err := io.ReadFull(sr, meta[:]); err != nil {
		return nil, fmt.Errorf("collector: snapshot meta: %w", err)
	}
	if err := sr.End(); err != nil {
		return nil, fmt.Errorf("collector: snapshot meta: %w", err)
	}
	total := binary.BigEndian.Uint64(meta[0:])
	addrN := binary.BigEndian.Uint64(meta[8:])
	iidN := binary.BigEndian.Uint64(meta[16:])
	spanN := binary.BigEndian.Uint64(meta[24:])
	singleN := binary.BigEndian.Uint64(meta[32:])
	if addrN > uint64(maxSlabIndex) || iidN > uint64(maxSlabIndex) || spanN > uint64(maxSlabIndex) {
		return nil, fmt.Errorf("collector: snapshot counts %d/%d/%d exceed slab addressing", addrN, iidN, spanN)
	}
	if singleN > addrN {
		return nil, fmt.Errorf("collector: snapshot declares %d singleton IIDs over %d addresses", singleN, addrN)
	}

	c := New()
	c.total = total

	// addrs: bulk slab load. Reading batch-by-batch bounds allocation by
	// the bytes actually present, no matter what the section size claims.
	if err := expectSection(sr, secAddrs, addrN*addrEntryWire); err != nil {
		return nil, err
	}
	buf := make([]byte, wireBatch*addrEntryWire)
	if err := readEntries(sr, buf, addrN, addrEntryWire, func(b []byte) error {
		i := c.addrRecs.alloc()
		e := c.addrRecs.at(i)
		copy(e.key[:], b[0:16])
		e.rec.First = int64(binary.BigEndian.Uint64(b[16:]))
		e.rec.Last = int64(binary.BigEndian.Uint64(b[24:]))
		e.rec.Count = binary.BigEndian.Uint32(b[32:])
		e.rec.Servers = binary.BigEndian.Uint32(b[36:])
		return nil
	}); err != nil {
		return nil, fmt.Errorf("collector: snapshot addrs: %w", err)
	}

	// promoted IIDs
	if err := expectSection(sr, secIIDs, iidN*iidEntryWire); err != nil {
		return nil, err
	}
	if err := readEntries(sr, buf, iidN, iidEntryWire, func(b []byte) error {
		i := c.iidRecs.alloc()
		e := c.iidRecs.at(i)
		e.key = addr.IID(binary.BigEndian.Uint64(b[0:]))
		e.first = int64(binary.BigEndian.Uint64(b[8:]))
		e.last = int64(binary.BigEndian.Uint64(b[16:]))
		e.count = binary.BigEndian.Uint32(b[24:])
		e.spans = binary.BigEndian.Uint32(b[28:])
		e.p64n = binary.BigEndian.Uint32(b[32:])
		if e.spans != spanNone && uint64(e.spans) >= spanN {
			return fmt.Errorf("IID %d span head %d out of %d", i, e.spans, spanN)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("collector: snapshot iids: %w", err)
	}

	// span slab
	if err := expectSection(sr, secSpans, spanN*spanEntryWire); err != nil {
		return nil, err
	}
	if err := readEntries(sr, buf, spanN, spanEntryWire, func(b []byte) error {
		i := c.spans.alloc()
		n := c.spans.at(i)
		n.p64 = addr.Prefix64(binary.BigEndian.Uint64(b[0:]))
		n.first = int64(binary.BigEndian.Uint64(b[8:]))
		n.last = int64(binary.BigEndian.Uint64(b[16:]))
		n.next = binary.BigEndian.Uint32(b[24:])
		if n.next != spanNone && uint64(n.next) >= spanN {
			return fmt.Errorf("span %d chains to %d out of %d", i, n.next, spanN)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("collector: snapshot spans: %w", err)
	}

	// singleton references
	if err := expectSection(sr, secSingletons, singleN*singletonWire); err != nil {
		return nil, err
	}
	singles := make([]uint32, 0, min(singleN, wireBatch))
	if err := readEntries(sr, buf, singleN, singletonWire, func(b []byte) error {
		ref := binary.BigEndian.Uint32(b)
		if uint64(ref) >= addrN {
			return fmt.Errorf("singleton reference %d out of %d addresses", ref, addrN)
		}
		singles = append(singles, ref)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("collector: snapshot singletons: %w", err)
	}

	if err := readPrefixSet(sr, buf, secP48s, &c.p48s); err != nil {
		return nil, fmt.Errorf("collector: snapshot p48s: %w", err)
	}
	if err := readPrefixSet(sr, buf, secP64s, &c.p64s); err != nil {
		return nil, fmt.Errorf("collector: snapshot p64s: %w", err)
	}

	if _, _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("collector: snapshot carries trailing sections")
		}
		return nil, fmt.Errorf("collector: snapshot end: %w", err)
	}

	if err := c.rebuildIndexes(singles); err != nil {
		return nil, fmt.Errorf("collector: snapshot: %w", err)
	}
	// The restored state IS the checkpoint at chain position 0: deltas
	// written from here chain onto the snapshot just read.
	c.markClean(0)
	return c, nil
}

// readPrefixSet loads one strictly-ascending prefix list into a fresh
// set.
func readPrefixSet(sr *snapfmt.Reader, scratch []byte, id uint32, s *u64set) error {
	gotID, size, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("snapshot ends before section %d", id)
		}
		return err
	}
	if gotID != id {
		return fmt.Errorf("section %d where %d expected", gotID, id)
	}
	if size%prefixWire != 0 {
		return fmt.Errorf("section size %d not a multiple of %d", size, prefixWire)
	}
	first := true
	var prev uint64
	return readEntries(sr, scratch, size/prefixWire, prefixWire, func(b []byte) error {
		v := binary.BigEndian.Uint64(b)
		if !first && v <= prev {
			return fmt.Errorf("prefixes not strictly ascending (%d after %d)", v, prev)
		}
		first, prev = false, v
		s.insert(v)
		return nil
	})
}

// expectSection asserts the next section's id and exact size: version 1
// streams have a fixed section order, and a size that disagrees with
// the meta counts is structural damage.
func expectSection(sr *snapfmt.Reader, id uint32, size uint64) error {
	gotID, gotSize, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("collector: snapshot ends before section %d", id)
		}
		return fmt.Errorf("collector: snapshot section %d: %w", id, err)
	}
	if gotID != id {
		return fmt.Errorf("collector: snapshot section %d where %d expected", gotID, id)
	}
	if gotSize != size {
		return fmt.Errorf("collector: snapshot section %d is %d bytes, want %d", id, gotSize, size)
	}
	return nil
}

// readEntries streams n fixed-size entries through fn in batches using
// scratch (sized for wireBatch addr entries) as the read buffer.
func readEntries(sr *snapfmt.Reader, scratch []byte, n uint64, entry int, fn func(b []byte) error) error {
	per := uint64(len(scratch)) / uint64(entry)
	for done := uint64(0); done < n; {
		batch := min(n-done, per)
		b := scratch[:batch*uint64(entry)]
		if _, err := io.ReadFull(sr, b); err != nil {
			return err
		}
		for k := uint64(0); k < batch; k++ {
			if err := fn(b[k*uint64(entry) : (k+1)*uint64(entry)]); err != nil {
				return err
			}
		}
		done += batch
	}
	return sr.End()
}

// radixSortU32 sorts in place by two 16-bit digit passes: O(n) where
// sort.Slice's comparison sort would rival the whole index rebuild at
// corpus scale.
func radixSortU32(v []uint32) {
	if len(v) < 64 {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		return
	}
	tmp := make([]uint32, len(v))
	var count [1 << 16]uint32
	for shift := 0; shift <= 16; shift += 16 {
		for i := range count {
			count[i] = 0
		}
		for _, x := range v {
			count[(x>>shift)&0xffff]++
		}
		pos := uint32(0)
		for i, n := range count {
			count[i] = pos
			pos += n
		}
		for _, x := range v {
			d := (x >> shift) & 0xffff
			tmp[count[d]] = x
			count[d]++
		}
		v, tmp = tmp, v
	}
	// Two swaps: the sorted data is back in the caller's slice.
}

// tableSizeFor returns the power-of-two slot count that holds n entries
// under the 3/4 load-factor bound.
func tableSizeFor(n uint64) int {
	size := tableInit
	for growTable(n, size) {
		size *= 2
	}
	return size
}

// rebuildIndexes reconstructs everything the snapshot omits from the
// loaded slabs: the address and IID open-addressing tables (sized once
// for the final counts — the compaction restore buys over a live,
// grown-in-place table), the prefix sets, and iidUsed. It also performs
// the structural validation that CRCs cannot: duplicate keys and span
// chains that share, cycle or leak nodes are all rejected.
//
// The rebuild is the bulk of restore time, so its memory behaviour is
// deliberate: one sequential pass streams every key's hashes into flat
// scratch arrays (L3-resident even for tens of millions of records),
// and the insert loops then resolve probe collisions by comparing
// those hashes instead of the colliding records' keys — the slabs,
// which dwarf every cache, are only touched again on a full 64-bit
// hash match (a genuine duplicate, or a one-in-2^64 coincidence).
// Without this, every probe collision is a cold random read into the
// record slab and the rebuild runs several times slower.
func (c *Collector) rebuildIndexes(singles []uint32) error {
	addrN := c.addrRecs.n
	// Sequential hash pass. The prefix sets arrived in their own
	// sections (derived data, traded for restore speed); a strided
	// sample of addresses — every address in small corpora — is checked
	// against them so a snapshot whose sets disagree with its own
	// records is rejected.
	sampleStep := uint32(1)
	if addrN > 4096 {
		sampleStep = addrN / 4096
	}
	addrHash := make([]uint64, addrN)
	addrIIDHash := make([]uint64, addrN) // mix64 of each address's IID
	for i := uint32(0); i < addrN; i++ {
		key := c.addrRecs.at(i).key
		addrHash[i] = key.Hash64()
		addrIIDHash[i] = mix64(uint64(key.IID()))
		if i%sampleStep == 0 {
			if !c.p48s.contains(uint64(key.P48())) || !c.p64s.contains(uint64(key.P64())) {
				return fmt.Errorf("prefix sets omit address %d's prefixes", i)
			}
		}
	}

	c.addrIdx = make([]uint32, tableSizeFor(uint64(addrN)))
	mask := uint64(len(c.addrIdx) - 1)
	for i := uint32(0); i < addrN; i++ {
		h := addrHash[i]
		pos := h & mask
		for {
			v := c.addrIdx[pos]
			if v == 0 {
				c.addrIdx[pos] = i + 1
				break
			}
			if addrHash[v-1] == h && c.addrRecs.at(v-1).key == c.addrRecs.at(i).key {
				return fmt.Errorf("duplicate address at slab %d and %d", v-1, i)
			}
			pos = (pos + 1) & mask
		}
	}

	iidHash := make([]uint64, c.iidRecs.n)
	for i := uint32(0); i < c.iidRecs.n; i++ {
		iidHash[i] = mix64(uint64(c.iidRecs.at(i).key))
	}
	hashOfRef := func(ref uint32) uint64 {
		if ref&promotedTag != 0 {
			return iidHash[ref&^promotedTag]
		}
		return addrIIDHash[ref]
	}

	c.iidIdx = make([]uint32, tableSizeFor(uint64(c.iidRecs.n)+uint64(len(singles))))
	mask = uint64(len(c.iidIdx) - 1)
	insertIID := func(ref uint32, h uint64) error {
		pos := h & mask
		for {
			v := c.iidIdx[pos]
			if v == 0 {
				c.iidIdx[pos] = ref + 1
				c.iidUsed++
				return nil
			}
			if hashOfRef(v-1) == h && c.iidKeyOf(v-1) == c.iidKeyOf(ref) {
				return fmt.Errorf("duplicate IID %016x", uint64(c.iidKeyOf(ref)))
			}
			pos = (pos + 1) & mask
		}
	}
	for i := uint32(0); i < c.iidRecs.n; i++ {
		if err := insertIID(i|promotedTag, iidHash[i]); err != nil {
			return err
		}
	}
	// Singletons arrive in table-slot order — effectively random — so
	// their addrIIDHash reads would be scattered; ref-sorting them makes
	// that array access a forward stream. Insert order cannot change the
	// outcome (duplicates are errors either way).
	radixSortU32(singles)
	for _, ref := range singles {
		if err := insertIID(ref, addrIIDHash[ref]); err != nil {
			return err
		}
	}

	return c.validateSpans()
}

// validateSpans performs the span-chain accounting restore paths rely
// on: every span node belongs to exactly one promoted IID's chain,
// every chain is acyclic and in-bounds, and each entry's p64n matches
// its chain length. Together with per-entry bounds checks at load time
// this makes every reachable spans.at call safe. Shared by the full
// snapshot rebuild and the delta apply path.
func (c *Collector) validateSpans() error {
	visited := make([]bool, c.spans.n)
	accounted := uint32(0)
	for i := uint32(0); i < c.iidRecs.n; i++ {
		e := c.iidRecs.at(i)
		length := uint32(0)
		for si := e.spans; si != spanNone; si = c.spans.at(si).next {
			if si >= c.spans.n {
				return fmt.Errorf("IID %016x chains span %d out of %d", uint64(e.key), si, c.spans.n)
			}
			if visited[si] {
				return fmt.Errorf("span %d shared or cyclic in IID %016x's chain", si, uint64(e.key))
			}
			visited[si] = true
			length++
		}
		if length != e.p64n {
			return fmt.Errorf("IID %016x chains %d spans but declares %d", uint64(e.key), length, e.p64n)
		}
		accounted += length
	}
	if accounted != c.spans.n {
		return fmt.Errorf("%d span nodes unreachable from any IID", c.spans.n-accounted)
	}
	return nil
}
