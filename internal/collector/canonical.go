package collector

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"sort"

	"hitlist6/internal/addr"
)

// sortedAddrIdx returns the address slab indices in canonical order
// (ascending by the 128-bit address value).
func (c *Collector) sortedAddrIdx() []uint32 {
	idx := make([]uint32, c.addrRecs.n)
	for i := range idx {
		idx[i] = uint32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		return c.addrRecs.at(idx[i]).key.Less(c.addrRecs.at(idx[j]).key)
	})
	return idx
}

// iidRefPair couples an IID with its table reference for sorting.
type iidRefPair struct {
	key addr.IID
	ref uint32
}

// sortedIIDRefs returns every IID (promoted and singleton) with its
// reference, in ascending IID order.
func (c *Collector) sortedIIDRefs() []iidRefPair {
	out := make([]iidRefPair, 0, c.iidUsed)
	for _, v := range c.iidIdx {
		if v == 0 {
			continue
		}
		ref := v - 1
		out = append(out, iidRefPair{key: c.iidKeyOf(ref), ref: ref})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// WriteCanonical writes a deterministic binary encoding of the corpus:
// every (address, record) pair sorted by address, then every (IID,
// record) pair sorted by IID with per-/64 spans sorted by prefix. Two
// collectors hold identical observations if and only if their canonical
// encodings are byte-identical — regardless of insertion order, shard
// count, merge schedule or storage layout (the encoding predates the
// flat-slab engine and is pinned by a golden-checksum test). This is the
// ground truth the sharded-ingest equivalence tests assert on.
func (c *Collector) WriteCanonical(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		bw.Write(scratch[:])
	}

	putU64(c.total)

	addrIdx := c.sortedAddrIdx()
	putU64(uint64(len(addrIdx)))
	for _, ri := range addrIdx {
		e := c.addrRecs.at(ri)
		bw.Write(e.key[:])
		putU64(uint64(e.rec.First))
		putU64(uint64(e.rec.Last))
		putU64(uint64(e.rec.Count))
		putU64(uint64(e.rec.Servers))
	}

	if err := c.writeCanonicalIIDsTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCanonicalIIDs writes only the IID half of the canonical encoding
// (IID count, then every IID record in ascending order with sorted
// spans). The tiered corpus format embeds exactly these bytes as its
// resident IID tier so a pager-backed checksum can splice them in
// without holding the collector.
func (c *Collector) WriteCanonicalIIDs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := c.writeCanonicalIIDsTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

func (c *Collector) writeCanonicalIIDsTo(bw *bufio.Writer) error {
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		bw.Write(scratch[:])
	}

	iids := c.sortedIIDRefs()
	putU64(uint64(len(iids)))
	var p64s []spanNode // scratch, reused across IIDs
	for _, p := range iids {
		v := IIDView{c: c, ref: p.ref}
		first, last, count := v.summary()
		putU64(uint64(p.key))
		putU64(uint64(first))
		putU64(uint64(last))
		putU64(uint64(count))
		r := v.promoted()
		if r == nil || r.spans == spanNone {
			// Untracked IIDs encode as the seed layout's nil span map.
			putU64(0xffffffffffffffff)
			continue
		}
		p64s = p64s[:0]
		for i := r.spans; i != spanNone; {
			n := c.spans.at(i)
			p64s = append(p64s, *n)
			i = n.next
		}
		sort.Slice(p64s, func(i, j int) bool { return uint64(p64s[i].p64) < uint64(p64s[j].p64) })
		putU64(uint64(len(p64s)))
		for _, n := range p64s {
			putU64(uint64(n.p64))
			putU64(uint64(n.first))
			putU64(uint64(n.last))
		}
	}
	return nil
}

// Checksum returns the SHA-256 of the canonical encoding: a compact
// fingerprint for asserting two corpora are observation-identical.
func (c *Collector) Checksum() [32]byte {
	h := sha256.New()
	// sha256.Write never fails; WriteCanonical only surfaces its writer's
	// errors.
	_ = c.WriteCanonical(h)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
