package collector

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"sort"

	"hitlist6/internal/addr"
)

// WriteCanonical writes a deterministic binary encoding of the corpus:
// every (address, record) pair sorted by address, then every (IID,
// record) pair sorted by IID with per-/64 spans sorted by prefix. Two
// collectors hold identical observations if and only if their canonical
// encodings are byte-identical — regardless of insertion order, shard
// count or merge schedule. This is the ground truth the sharded-ingest
// equivalence tests assert on.
func (c *Collector) WriteCanonical(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		bw.Write(scratch[:])
	}

	putU64(c.total)

	addrs := make([]addr.Addr, 0, len(c.addrs))
	for a := range c.addrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		ai, aj := addrs[i], addrs[j]
		if hi, hj := ai.Hi(), aj.Hi(); hi != hj {
			return hi < hj
		}
		return ai.Lo() < aj.Lo()
	})
	putU64(uint64(len(addrs)))
	for _, a := range addrs {
		r := c.addrs[a]
		bw.Write(a[:])
		putU64(uint64(r.First))
		putU64(uint64(r.Last))
		putU64(uint64(r.Count))
		putU64(uint64(r.Servers))
	}

	iids := make([]addr.IID, 0, len(c.iids))
	for iid := range c.iids {
		iids = append(iids, iid)
	}
	sort.Slice(iids, func(i, j int) bool { return iids[i] < iids[j] })
	putU64(uint64(len(iids)))
	for _, iid := range iids {
		r := c.iids[iid]
		putU64(uint64(iid))
		putU64(uint64(r.First))
		putU64(uint64(r.Last))
		putU64(uint64(r.Count))
		if r.P64s == nil {
			putU64(0xffffffffffffffff)
			continue
		}
		p64s := make([]addr.Prefix64, 0, len(r.P64s))
		for p := range r.P64s {
			p64s = append(p64s, p)
		}
		sort.Slice(p64s, func(i, j int) bool { return uint64(p64s[i]) < uint64(p64s[j]) })
		putU64(uint64(len(p64s)))
		for _, p := range p64s {
			sp := r.P64s[p]
			putU64(uint64(p))
			putU64(uint64(sp.First))
			putU64(uint64(sp.Last))
		}
	}
	return bw.Flush()
}

// Checksum returns the SHA-256 of the canonical encoding: a compact
// fingerprint for asserting two corpora are observation-identical.
func (c *Collector) Checksum() [32]byte {
	h := sha256.New()
	// sha256.Write never fails; WriteCanonical only surfaces its writer's
	// errors.
	_ = c.WriteCanonical(h)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
