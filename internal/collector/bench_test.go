package collector

import (
	"runtime"
	"sync"
	"testing"

	"hitlist6/internal/addr"
)

// The collector memory benchmarks quantify the flat-slab engine against
// the seed's pointer-per-record layout (reproduced below verbatim) on
// the same ~1M-unique-address stream. Run with
//
//	go test -bench BenchmarkCollectorMemory -benchmem ./internal/collector
//
// and compare B/op, allocs/op and the live_B/addr metric across the
// layout= variants; the flat engine must stay >= 2x below the seed on
// bytes and allocations per unique address with events/sec no worse.

// ---- seed-layout baseline ----
//
// seedCollector is the pre-refactor storage shape: one heap-allocated
// record per unique address and IID, and a nested map of *Span per
// EUI-64 IID. Kept only as the benchmark baseline.

type seedSpan struct{ First, Last int64 }

type seedIIDRecord struct {
	First, Last int64
	Count       uint32
	P64s        map[addr.Prefix64]*seedSpan
}

type seedCollector struct {
	addrs map[addr.Addr]*AddrRecord
	iids  map[addr.IID]*seedIIDRecord
	total uint64
}

func newSeedCollector() *seedCollector {
	return &seedCollector{
		addrs: make(map[addr.Addr]*AddrRecord),
		iids:  make(map[addr.IID]*seedIIDRecord),
	}
}

func (c *seedCollector) NumAddrs() int { return len(c.addrs) }

func (c *seedCollector) ObserveUnix(a addr.Addr, ts int64, server int) {
	serverBit := ServerBit(server)
	c.total++

	if r, ok := c.addrs[a]; ok {
		if ts < r.First {
			r.First = ts
		}
		if ts > r.Last {
			r.Last = ts
		}
		r.Count++
		r.Servers |= serverBit
	} else {
		c.addrs[a] = &AddrRecord{First: ts, Last: ts, Count: 1, Servers: serverBit}
	}

	iid := a.IID()
	r, ok := c.iids[iid]
	if !ok {
		r = &seedIIDRecord{First: ts, Last: ts}
		if iid.IsEUI64() {
			r.P64s = make(map[addr.Prefix64]*seedSpan, 1)
		}
		c.iids[iid] = r
	} else {
		if ts < r.First {
			r.First = ts
		}
		if ts > r.Last {
			r.Last = ts
		}
	}
	r.Count++
	if r.P64s != nil {
		p := a.P64()
		if sp, ok := r.P64s[p]; ok {
			if ts < sp.First {
				sp.First = ts
			}
			if ts > sp.Last {
				sp.Last = ts
			}
		} else {
			r.P64s[p] = &seedSpan{First: ts, Last: ts}
		}
	}
}

// ---- benchmark stream ----

type benchEvent struct {
	a      addr.Addr
	ts     int64
	server int
}

var (
	benchStreamOnce sync.Once
	benchStream     []benchEvent
	benchUniques    int
)

// collectorBenchStream materializes a deterministic ~1.5M-event stream
// with >= 1M unique addresses shaped like the paper's corpus at reduced
// scale: random-IID clients clustered ~16 per /64 and ~64 per /48
// (Table 1: 7.9B addresses over 540M /64s and 167M /48s), ~20% repeat
// sightings, and an EUI-64 subset (~4%) whose MACs renumber across /64s.
func collectorBenchStream() ([]benchEvent, int) {
	benchStreamOnce.Do(func() {
		const n = 1_500_000
		state := uint64(0x1157)
		macs := make([]addr.MAC, 1<<12)
		for i := range macs {
			v := splitmix64(&state)
			macs[i] = addr.MAC{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24), byte(v >> 32), byte(v >> 40)}
		}
		// 64k /64s, four per /48: the paper's client-density shape.
		p64Of := func(id uint64) uint64 {
			id &= 0xffff
			return 0x20010db8_00000000 | (id>>2)<<16 | id&3
		}
		events := make([]benchEvent, 0, n)
		uniq := make(map[addr.Addr]struct{}, n)
		base := int64(1643068800)
		for i := 0; i < n; i++ {
			r := splitmix64(&state)
			var a addr.Addr
			switch {
			case r%25 == 0:
				// EUI-64 device in one of the /64s.
				a = addr.FromParts(p64Of(r>>16), uint64(addr.EUI64FromMAC(macs[r%uint64(len(macs))])))
			case r%5 == 1 && len(events) > 0:
				// Repeat sighting of an earlier address.
				a = events[splitmix64(&state)%uint64(len(events))].a
			default:
				a = addr.FromParts(p64Of(r>>16), splitmix64(&state))
			}
			events = append(events, benchEvent{a: a, ts: base + int64(i)/16, server: int(r % 27)})
			uniq[a] = struct{}{}
		}
		benchStream = events
		benchUniques = len(uniq)
	})
	return benchStream, benchUniques
}

type corpus interface{ NumAddrs() int }

// benchCorpusBuild measures one layout: per-build allocation volume
// (B/op, allocs/op via -benchmem), the retained live_B/addr of the
// final corpus, and events/sec throughput.
func benchCorpusBuild(b *testing.B, build func(events []benchEvent) corpus) {
	events, uniques := collectorBenchStream()
	if uniques < 1_000_000 {
		b.Fatalf("stream has %d uniques, want >= 1M", uniques)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var keep corpus
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep = build(events)
	}
	b.StopTimer()
	if keep.NumAddrs() != uniques {
		b.Fatalf("corpus holds %d addrs, want %d", keep.NumAddrs(), uniques)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if live := float64(after.HeapAlloc) - float64(before.HeapAlloc); live > 0 {
		b.ReportMetric(live/float64(uniques), "live_B/addr")
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	runtime.KeepAlive(keep)
}

func BenchmarkCollectorMemory(b *testing.B) {
	b.Run("layout=flat", func(b *testing.B) {
		benchCorpusBuild(b, func(events []benchEvent) corpus {
			c := New()
			for _, ev := range events {
				c.ObserveUnix(ev.a, ev.ts, ev.server)
			}
			return c
		})
	})
	b.Run("layout=seed", func(b *testing.B) {
		benchCorpusBuild(b, func(events []benchEvent) corpus {
			c := newSeedCollector()
			for _, ev := range events {
				c.ObserveUnix(ev.a, ev.ts, ev.server)
			}
			return c
		})
	})
}

// TestFlatLayoutAllocWin makes the benchmark's headline self-enforcing
// at reduced scale: building the same corpus must cost the flat engine
// at most half the seed layout's heap allocations (in practice it is
// orders of magnitude fewer — slab growth amortizes to O(log n)
// allocations where the seed paid O(n)).
func TestFlatLayoutAllocWin(t *testing.T) {
	events, _ := collectorBenchStream()
	events = events[:120_000]
	flat := testing.AllocsPerRun(1, func() {
		c := New()
		for _, ev := range events {
			c.ObserveUnix(ev.a, ev.ts, ev.server)
		}
	})
	seed := testing.AllocsPerRun(1, func() {
		c := newSeedCollector()
		for _, ev := range events {
			c.ObserveUnix(ev.a, ev.ts, ev.server)
		}
	})
	if flat*2 > seed {
		t.Errorf("flat layout allocs %.0f vs seed %.0f: want >= 2x fewer", flat, seed)
	}
}
