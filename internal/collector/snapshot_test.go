package collector

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hitlist6/internal/addr"
)

// updateGolden regenerates testdata/golden.snap from the golden stream:
//
//	go test ./internal/collector -run TestSnapshotGoldenFixture -update
//
// Only legitimate when the snapshot format version is bumped — the
// fixture pins version 1's exact bytes as readable forever.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.snap")

const goldenSnapshotPath = "testdata/golden.snap"

// goldenCollector builds the collector behind the golden checksum.
func goldenCollector(t testing.TB) *Collector {
	t.Helper()
	addrs, times, servers := goldenStream()
	c := New()
	for i := range addrs {
		c.ObserveUnix(addrs[i], times[i], servers[i])
	}
	return c
}

// TestSnapshotRoundTrip is the tentpole invariant: snapshot → restore
// reproduces the canonical encoding byte for byte, along with every
// count and the exact slab layout the restored indexes hang off.
func TestSnapshotRoundTrip(t *testing.T) {
	c := goldenCollector(t)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	got, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if got.Checksum() != c.Checksum() {
		t.Fatalf("restored checksum differs from original")
	}
	if got.NumAddrs() != c.NumAddrs() || got.NumIIDs() != c.NumIIDs() ||
		got.TotalObservations() != c.TotalObservations() ||
		got.Unique48s() != c.Unique48s() || got.Unique64s() != c.Unique64s() {
		t.Fatalf("restored counts differ: addrs %d/%d iids %d/%d total %d/%d",
			got.NumAddrs(), c.NumAddrs(), got.NumIIDs(), c.NumIIDs(),
			got.TotalObservations(), c.TotalObservations())
	}
	// A restored collector must keep accepting observations and merges.
	a := addr.MustParse("2001:db8::1234")
	got.ObserveUnix(a, 1700000000, 3)
	if r, ok := got.Get(a); !ok || r.Count != 1 {
		t.Fatalf("restored collector rejects new observations: %+v ok=%v", r, ok)
	}
}

// TestSnapshotRoundTripEmpty covers the degenerate corpus.
func TestSnapshotRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	got, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if got.NumAddrs() != 0 || got.NumIIDs() != 0 || got.TotalObservations() != 0 {
		t.Fatalf("restored empty corpus is not empty")
	}
	if got.Checksum() != New().Checksum() {
		t.Fatalf("empty round trip checksum differs")
	}
}

// TestSnapshotComposes verifies the stream is self-delimiting: two
// snapshots written back to back on one writer restore independently
// from one reader — the property study checkpoints build on.
func TestSnapshotComposes(t *testing.T) {
	c1 := goldenCollector(t)
	c2 := New()
	c2.ObserveUnix(addr.MustParse("2001:db8:beef::1"), 1650000000, 2)
	var buf bytes.Buffer
	if err := c1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c2.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	got1, err := OpenSnapshot(r)
	if err != nil {
		t.Fatalf("first embedded snapshot: %v", err)
	}
	got2, err := OpenSnapshot(r)
	if err != nil {
		t.Fatalf("second embedded snapshot: %v", err)
	}
	if got1.Checksum() != c1.Checksum() || got2.Checksum() != c2.Checksum() {
		t.Fatalf("embedded snapshots drifted")
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left unread after both snapshots", r.Len())
	}
}

// TestSnapshotGoldenFixture pins the version-1 format: the checked-in
// fixture must keep restoring to the golden checksum regardless of any
// future reader or layout change. (The fixture's exact bytes are not
// pinned — snapshots encode slab order — but its readability and
// restored meaning are.)
func TestSnapshotGoldenFixture(t *testing.T) {
	if *updateGolden {
		c := goldenCollector(t)
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenSnapshotPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSnapshotPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenSnapshotPath, buf.Len())
	}
	raw, err := os.ReadFile(goldenSnapshotPath)
	if err != nil {
		t.Fatalf("golden fixture missing (regenerate with -update): %v", err)
	}
	c, err := OpenSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden fixture no longer restores: %v", err)
	}
	sum := c.Checksum()
	if got := hex.EncodeToString(sum[:]); got != goldenChecksum {
		t.Fatalf("golden fixture restores to checksum %s, want %s", got, goldenChecksum)
	}
}

// sectionBoundaries parses a snapshot's framing and returns every
// structural offset: after the stream header, after each section
// header, each section payload, each CRC, and before the end marker.
func sectionBoundaries(t *testing.T, raw []byte) []int {
	t.Helper()
	bounds := []int{0, 8, 12} // mid-magic, post-magic, post-version
	off := 12
	for {
		if off+12 > len(raw) {
			t.Fatalf("snapshot framing runs off the end at %d", off)
		}
		id := binary.BigEndian.Uint32(raw[off:])
		size := binary.BigEndian.Uint64(raw[off+4:])
		bounds = append(bounds, off, off+12)
		off += 12
		if id == 0 {
			if off != len(raw) {
				t.Fatalf("trailing bytes after end marker: %d != %d", off, len(raw))
			}
			return bounds
		}
		off += int(size)
		bounds = append(bounds, off) // end of payload, before CRC
		off += 4
		bounds = append(bounds, off) // after CRC
	}
}

// TestSnapshotTruncationTorture is the crash-recovery contract: a
// snapshot cut short at any section boundary — and at a spread of
// mid-section offsets — must fail restore with an error, never panic,
// never return a partial corpus.
func TestSnapshotTruncationTorture(t *testing.T) {
	c := goldenCollector(t)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cuts := sectionBoundaries(t, raw)
	// A sample of mid-section offsets, including off-by-one around each
	// boundary and a sweep through the payload interiors.
	for _, b := range append([]int(nil), cuts...) {
		if b > 0 {
			cuts = append(cuts, b-1)
		}
		if b+1 < len(raw) {
			cuts = append(cuts, b+1)
		}
	}
	for off := 13; off < len(raw)-1; off += len(raw) / 97 {
		cuts = append(cuts, off)
	}

	for _, cut := range cuts {
		if cut >= len(raw) {
			continue
		}
		got, err := OpenSnapshot(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d restored a corpus (%d addrs)", cut, len(raw), got.NumAddrs())
		}
		if got != nil {
			t.Fatalf("truncation at %d returned a non-nil collector with its error", cut)
		}
	}
}

// TestSnapshotBitFlipTorture flips bits across the stream — header,
// counts, payloads, CRCs — and requires every flip to surface as an
// error. CRC-32C catches all single-bit payload damage; the framing
// checks catch the rest.
func TestSnapshotBitFlipTorture(t *testing.T) {
	c := goldenCollector(t)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	step := len(raw)/211 + 1
	for off := 0; off < len(raw); off += step {
		for _, bit := range []uint{0, 3, 7} {
			flipped := append([]byte(nil), raw...)
			flipped[off] ^= 1 << bit
			if _, err := OpenSnapshot(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d restored silently", off, bit)
			}
		}
	}
}

// TestOpenSnapshotGarbage rejects a spread of hostile inputs outright.
func TestOpenSnapshotGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("h6c"),
		"bad magic":   []byte("notacorp00000000000000000000"),
		"text":        []byte("hello world this is not a snapshot at all"),
		"zeros":       make([]byte, 256),
	}
	// Version from the future.
	future := []byte("h6corps1\xff\xff\xff\xff")
	cases["future version"] = future
	// Meta section lying about counts far past the payload.
	lying := []byte("h6corps1\x00\x00\x00\x01")
	lying = append(lying, 0, 0, 0, 1 /* id */, 0, 0, 0, 0, 0, 0, 0, 40)
	huge := make([]byte, 40)
	for i := range huge {
		huge[i] = 0xfe
	}
	lying = append(lying, huge...)
	cases["lying meta"] = lying

	for name, raw := range cases {
		if _, err := OpenSnapshot(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: restored without error", name)
		}
	}
}

// TestOpenSnapshotHugeCountsNoAlloc: a snapshot whose meta declares
// billions of records but carries no payload must fail fast on the
// missing bytes instead of allocating for the declared counts.
func TestOpenSnapshotHugeCountsNoAlloc(t *testing.T) {
	var buf bytes.Buffer
	// Hand-frame: valid header + valid meta section claiming 2^30 addrs,
	// then EOF.
	buf.WriteString("h6corps1")
	binary.Write(&buf, binary.BigEndian, uint32(1))
	binary.Write(&buf, binary.BigEndian, uint32(secMeta))
	binary.Write(&buf, binary.BigEndian, uint64(metaWire))
	start := buf.Len()
	binary.Write(&buf, binary.BigEndian, uint64(5))     // total
	binary.Write(&buf, binary.BigEndian, uint64(1<<30)) // addrN
	binary.Write(&buf, binary.BigEndian, uint64(0))     // iidN
	binary.Write(&buf, binary.BigEndian, uint64(0))     // spanN
	binary.Write(&buf, binary.BigEndian, uint64(0))     // singleN
	crc := crc32Castagnoli(buf.Bytes()[start:])
	binary.Write(&buf, binary.BigEndian, crc)
	binary.Write(&buf, binary.BigEndian, uint32(secAddrs))
	binary.Write(&buf, binary.BigEndian, uint64(1<<30)*addrEntryWire)
	// ...and no payload.

	done := make(chan error, 1)
	go func() {
		_, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
		done <- err
	}()
	if err := <-done; err == nil {
		t.Fatalf("restore of 2^30-addr husk succeeded")
	}
}

func crc32Castagnoli(b []byte) uint32 {
	return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
}

// TestSnapshotUnreadableWriter surfaces writer errors instead of
// swallowing them.
func TestSnapshotUnreadableWriter(t *testing.T) {
	c := goldenCollector(t)
	for limit := 0; limit < 2000; limit += 97 {
		w := &failAfter{n: limit}
		if err := c.Snapshot(w); err == nil {
			t.Fatalf("Snapshot over a writer failing at byte %d reported success", limit)
		}
	}
}

type failAfter struct{ n int }

func (w *failAfter) Write(p []byte) (int, error) {
	if len(p) >= w.n {
		n := w.n
		w.n = 0
		return n, io.ErrClosedPipe
	}
	w.n -= len(p)
	return len(p), nil
}

// TestSnapshotCorruptStructure hand-corrupts structural fields the CRC
// does protect — by recomputing the CRC after the edit — to prove the
// semantic validation catches what checksums alone cannot.
func TestSnapshotCorruptStructure(t *testing.T) {
	// A tiny corpus with one EUI-64 (promoted, spanned) IID and one
	// singleton.
	c := New()
	mac := addr.MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	c.ObserveUnix(addr.EUI64Addr(addr.MustParse("2001:db8:1::").P64(), mac), 1650000000, 1)
	c.ObserveUnix(addr.MustParse("2001:db8:2::1111"), 1650000100, 2)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Locate sections.
	type section struct{ hdr, payload, end int }
	secs := map[uint32]section{}
	off := 12
	for {
		id := binary.BigEndian.Uint32(raw[off:])
		size := int(binary.BigEndian.Uint64(raw[off+4:]))
		if id == 0 {
			break
		}
		secs[id] = section{hdr: off, payload: off + 12, end: off + 12 + size}
		off += 12 + size + 4
	}

	corrupt := func(name string, mutate func(b []byte)) {
		t.Run(name, func(t *testing.T) {
			mutated := append([]byte(nil), raw...)
			mutate(mutated)
			// Recompute every section CRC so only the structural check can
			// reject.
			for _, s := range secs {
				crc := crc32Castagnoli(mutated[s.payload:s.end])
				binary.BigEndian.PutUint32(mutated[s.end:], crc)
			}
			if _, err := OpenSnapshot(bytes.NewReader(mutated)); err == nil {
				t.Fatalf("structurally corrupt snapshot restored silently")
			}
		})
	}

	corrupt("span head out of range", func(b []byte) {
		iid := secs[secIIDs]
		// spans field at offset 28 of the first IID entry.
		binary.BigEndian.PutUint32(b[iid.payload+28:], 12345)
	})
	corrupt("span chain cycle", func(b []byte) {
		sp := secs[secSpans]
		// next field at offset 24: point the only span node at itself.
		binary.BigEndian.PutUint32(b[sp.payload+24:], 0)
	})
	corrupt("p64n mismatch", func(b []byte) {
		iid := secs[secIIDs]
		binary.BigEndian.PutUint32(b[iid.payload+32:], 7)
	})
	corrupt("singleton out of range", func(b []byte) {
		sg := secs[secSingletons]
		binary.BigEndian.PutUint32(b[sg.payload:], 99)
	})
	corrupt("duplicate address", func(b []byte) {
		ad := secs[secAddrs]
		// Overwrite the second address entry's key with the first's.
		copy(b[ad.payload+addrEntryWire:ad.payload+addrEntryWire+16], b[ad.payload:ad.payload+16])
	})
}

// TestSnapshotDeterministic: one collector snapshots to identical bytes
// every time (slab order is deterministic state).
func TestSnapshotDeterministic(t *testing.T) {
	c := goldenCollector(t)
	var a, b strings.Builder
	if err := c.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same collector snapshots to different bytes")
	}
}
