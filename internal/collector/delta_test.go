package collector

import (
	"bytes"
	"testing"

	"hitlist6/internal/addr"
)

// feedGolden replays golden-stream events [lo, hi) into c.
func feedGolden(c *Collector, addrs []addr.Addr, times []int64, servers []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		c.ObserveUnix(addrs[i], times[i], servers[i])
	}
}

// TestDeltaRoundTrip: full checkpoint, more observations, one delta;
// the restored chain must be observation-identical to the live
// collector and sit at the delta's chain position.
func TestDeltaRoundTrip(t *testing.T) {
	addrs, times, servers := goldenStream()
	c := New()
	feedGolden(c, addrs, times, servers, 0, len(addrs)/2)

	var base bytes.Buffer
	if err := c.Snapshot(&base); err != nil {
		t.Fatal(err)
	}
	c.MarkCheckpointedFull()

	feedGolden(c, addrs, times, servers, len(addrs)/2, len(addrs))
	var delta bytes.Buffer
	if err := c.SnapshotDelta(&delta); err != nil {
		t.Fatalf("SnapshotDelta: %v", err)
	}
	c.MarkCheckpointedDelta()

	got, err := RestoreChain(bytes.NewReader(base.Bytes()), bytes.NewReader(delta.Bytes()))
	if err != nil {
		t.Fatalf("RestoreChain: %v", err)
	}
	if got.Checksum() != c.Checksum() {
		t.Fatalf("chain-restored checksum differs from live")
	}
	if got.NumAddrs() != c.NumAddrs() || got.NumIIDs() != c.NumIIDs() ||
		got.TotalObservations() != c.TotalObservations() ||
		got.Unique48s() != c.Unique48s() || got.Unique64s() != c.Unique64s() {
		t.Fatalf("chain-restored counts differ")
	}
	if seq, based := got.CheckpointSeq(); !based || seq != 1 {
		t.Fatalf("chain-restored collector at seq %d based=%v, want 1/true", seq, based)
	}
	// The restored collector keeps accepting observations and deltas.
	got.ObserveUnix(addr.MustParse("2001:db8::abcd"), 1700000000, 1)
	var next bytes.Buffer
	if err := got.SnapshotDelta(&next); err != nil {
		t.Fatalf("delta on chain-restored collector: %v", err)
	}
}

// TestDeltaChain: a base plus several deltas restore to the live state,
// and every delta is validated against its exact parent.
func TestDeltaChain(t *testing.T) {
	addrs, times, servers := goldenStream()
	c := New()
	n := len(addrs)
	feedGolden(c, addrs, times, servers, 0, n/4)

	var base bytes.Buffer
	if err := c.Snapshot(&base); err != nil {
		t.Fatal(err)
	}
	c.MarkCheckpointedFull()

	var deltas []bytes.Buffer
	for _, seg := range [][2]int{{n / 4, n / 2}, {n / 2, 3 * n / 4}, {3 * n / 4, n}} {
		feedGolden(c, addrs, times, servers, seg[0], seg[1])
		var d bytes.Buffer
		if err := c.SnapshotDelta(&d); err != nil {
			t.Fatal(err)
		}
		c.MarkCheckpointedDelta()
		deltas = append(deltas, d)
	}

	got, err := RestoreChain(bytes.NewReader(base.Bytes()),
		bytes.NewReader(deltas[0].Bytes()), bytes.NewReader(deltas[1].Bytes()), bytes.NewReader(deltas[2].Bytes()))
	if err != nil {
		t.Fatalf("RestoreChain: %v", err)
	}
	if got.Checksum() != c.Checksum() {
		t.Fatalf("3-delta chain checksum differs from live")
	}
	if seq, _ := got.CheckpointSeq(); seq != 3 {
		t.Fatalf("chain at seq %d, want 3", seq)
	}

	// Deltas out of order or skipped must be rejected.
	if _, err := RestoreChain(bytes.NewReader(base.Bytes()), bytes.NewReader(deltas[1].Bytes())); err == nil {
		t.Fatalf("chain skipping delta 1 restored silently")
	}
	if _, err := RestoreChain(bytes.NewReader(base.Bytes()),
		bytes.NewReader(deltas[0].Bytes()), bytes.NewReader(deltas[0].Bytes())); err == nil {
		t.Fatalf("chain replaying delta 1 twice restored silently")
	}
}

// TestDeltaSizeRatio pins the acceptance bar: on a lightly-dirtied
// corpus a delta checkpoint must be at least 10x smaller than a full
// snapshot.
func TestDeltaSizeRatio(t *testing.T) {
	c := New()
	state := uint64(0xfeed)
	const n = 60000
	keys := make([]addr.Addr, n)
	for i := range keys {
		keys[i] = addr.FromParts(0x2001_0db8_0000_0000|splitmix64(&state)&0xffff_ffff, splitmix64(&state))
		c.ObserveUnix(keys[i], 1650000000+int64(i%1000), int(state%8))
	}

	var full bytes.Buffer
	if err := c.Snapshot(&full); err != nil {
		t.Fatal(err)
	}
	c.MarkCheckpointedFull()

	// Dirty a thin slice of the corpus: re-sightings of records that all
	// live in the first delta block.
	for i := 0; i < 50; i++ {
		c.ObserveUnix(keys[i], 1650100000, 1)
	}
	var delta bytes.Buffer
	if err := c.SnapshotDelta(&delta); err != nil {
		t.Fatal(err)
	}
	if ratio := float64(full.Len()) / float64(delta.Len()); ratio < 10 {
		t.Fatalf("delta is %d bytes vs %d full: ratio %.1fx < 10x", delta.Len(), full.Len(), ratio)
	}

	got, err := RestoreChain(bytes.NewReader(full.Bytes()), bytes.NewReader(delta.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != c.Checksum() {
		t.Fatalf("light-delta chain checksum differs from live")
	}
}

// TestDeltaAfterMergeAndAbsorb: the dirty tracking must see mutations
// arriving through the merge paths (shard ingest), not just ObserveUnix.
func TestDeltaAfterMergeAndAbsorb(t *testing.T) {
	addrs, times, servers := goldenStream()
	c := New()
	feedGolden(c, addrs, times, servers, 0, 2000)

	var base bytes.Buffer
	if err := c.Snapshot(&base); err != nil {
		t.Fatal(err)
	}
	c.MarkCheckpointedFull()

	// A colliding shard (same key universe) forces the Merge record path;
	// a disjoint shard takes Absorb's chunk adoption.
	shard := New()
	feedGolden(shard, addrs, times, servers, 1000, 3500)
	c.Absorb(shard)

	disjoint := New()
	disjoint.ObserveUnix(addr.MustParse("2001:db9:1::1"), 1660000000, 1)
	disjoint.ObserveUnix(addr.MustParse("2001:db9:2::2"), 1660000001, 2)
	c.Absorb(disjoint)

	var delta bytes.Buffer
	if err := c.SnapshotDelta(&delta); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreChain(bytes.NewReader(base.Bytes()), bytes.NewReader(delta.Bytes()))
	if err != nil {
		t.Fatalf("RestoreChain after merge: %v", err)
	}
	if got.Checksum() != c.Checksum() {
		t.Fatalf("post-merge delta chain checksum differs from live")
	}
}

// TestDeltaWithoutBase: a fresh collector has nothing to delta against.
func TestDeltaWithoutBase(t *testing.T) {
	var buf bytes.Buffer
	if err := New().SnapshotDelta(&buf); err == nil {
		t.Fatalf("delta without a base checkpoint succeeded")
	}
}

// TestDeltaWrongBase: applying a delta to a collector that is not its
// exact parent state fails fast.
func TestDeltaWrongBase(t *testing.T) {
	addrs, times, servers := goldenStream()
	c := New()
	feedGolden(c, addrs, times, servers, 0, 1000)
	var base bytes.Buffer
	if err := c.Snapshot(&base); err != nil {
		t.Fatal(err)
	}
	c.MarkCheckpointedFull()
	feedGolden(c, addrs, times, servers, 1000, 2000)
	var delta bytes.Buffer
	if err := c.SnapshotDelta(&delta); err != nil {
		t.Fatal(err)
	}

	// Parent drifted by one observation after restore.
	drifted, err := OpenSnapshot(bytes.NewReader(base.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drifted.ObserveUnix(addr.MustParse("2001:db8::1"), 1700000000, 1)
	if err := drifted.ApplyDelta(bytes.NewReader(delta.Bytes())); err == nil {
		t.Fatalf("delta applied to drifted parent silently")
	}

	// A fresh collector is not a parent at all.
	if err := New().ApplyDelta(bytes.NewReader(delta.Bytes())); err == nil {
		t.Fatalf("delta applied to fresh collector silently")
	}
}

// deltaFixture builds a (base, delta, live) triple for the torture
// tests.
func deltaFixture(t *testing.T) (base, delta []byte, live *Collector) {
	t.Helper()
	addrs, times, servers := goldenStream()
	c := New()
	feedGolden(c, addrs, times, servers, 0, 2500)
	var b bytes.Buffer
	if err := c.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	c.MarkCheckpointedFull()
	feedGolden(c, addrs, times, servers, 2500, 5000)
	var d bytes.Buffer
	if err := c.SnapshotDelta(&d); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), d.Bytes(), c
}

// TestDeltaTruncationTorture: a delta cut anywhere must fail the chain
// restore with an error — never a panic, never a partial corpus.
func TestDeltaTruncationTorture(t *testing.T) {
	base, delta, _ := deltaFixture(t)
	cuts := sectionBoundaries(t, delta)
	for _, b := range append([]int(nil), cuts...) {
		if b > 0 {
			cuts = append(cuts, b-1)
		}
		if b+1 < len(delta) {
			cuts = append(cuts, b+1)
		}
	}
	for off := 13; off < len(delta)-1; off += len(delta)/97 + 1 {
		cuts = append(cuts, off)
	}
	for _, cut := range cuts {
		if cut >= len(delta) {
			continue
		}
		got, err := RestoreChain(bytes.NewReader(base), bytes.NewReader(delta[:cut]))
		if err == nil {
			t.Fatalf("delta truncated at %d/%d restored a corpus", cut, len(delta))
		}
		if got != nil {
			t.Fatalf("delta truncated at %d returned a collector with its error", cut)
		}
	}
}

// TestDeltaBitFlipTorture: every single-bit flip across the delta
// stream must surface as an error.
func TestDeltaBitFlipTorture(t *testing.T) {
	base, delta, _ := deltaFixture(t)
	step := len(delta)/211 + 1
	for off := 0; off < len(delta); off += step {
		for _, bit := range []uint{0, 3, 7} {
			flipped := append([]byte(nil), delta...)
			flipped[off] ^= 1 << bit
			if _, err := RestoreChain(bytes.NewReader(base), bytes.NewReader(flipped)); err == nil {
				t.Fatalf("delta bit flip at byte %d bit %d restored silently", off, bit)
			}
		}
	}
}

// TestStoreDeltaCheckpoints drives the chain through the Store facade:
// full, two deltas, restore, and the no-base guard.
func TestStoreDeltaCheckpoints(t *testing.T) {
	addrs, times, servers := goldenStream()
	s := NewStore()

	var early bytes.Buffer
	if err := s.CheckpointDelta(&early); err == nil {
		t.Fatalf("delta checkpoint before any full checkpoint succeeded")
	}

	shard := New()
	feedGolden(shard, addrs, times, servers, 0, 1500)
	s.ApplyShard(shard)

	var base bytes.Buffer
	if err := s.CheckpointFull(&base); err != nil {
		t.Fatal(err)
	}
	if seq, based := s.CheckpointSeq(); !based || seq != 0 {
		t.Fatalf("store at seq %d based=%v after full checkpoint", seq, based)
	}

	var deltas []bytes.Buffer
	for _, seg := range [][2]int{{1500, 3000}, {3000, 5000}} {
		shard := New()
		feedGolden(shard, addrs, times, servers, seg[0], seg[1])
		s.ApplyShard(shard)
		var d bytes.Buffer
		if err := s.CheckpointDelta(&d); err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
	}
	if seq, _ := s.CheckpointSeq(); seq != 2 {
		t.Fatalf("store at seq %d after two deltas", seq)
	}

	got, err := RestoreChain(bytes.NewReader(base.Bytes()),
		bytes.NewReader(deltas[0].Bytes()), bytes.NewReader(deltas[1].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != s.Checksum() {
		t.Fatalf("store chain restore checksum differs")
	}
}

// TestDeltaFailedWriteKeepsWatermark: a failed delta write must not
// advance the chain — the store can retry or fall back to a full
// checkpoint with nothing lost.
func TestDeltaFailedWriteKeepsWatermark(t *testing.T) {
	addrs, times, servers := goldenStream()
	s := NewStore()
	shard := New()
	feedGolden(shard, addrs, times, servers, 0, 1000)
	s.ApplyShard(shard)
	var base bytes.Buffer
	if err := s.CheckpointFull(&base); err != nil {
		t.Fatal(err)
	}
	shard = New()
	feedGolden(shard, addrs, times, servers, 1000, 2000)
	s.ApplyShard(shard)

	if err := s.CheckpointDelta(&failAfter{n: 100}); err == nil {
		t.Fatalf("delta over a failing writer reported success")
	}
	if seq, based := s.CheckpointSeq(); !based || seq != 0 {
		t.Fatalf("failed delta moved the watermark to seq %d based=%v", seq, based)
	}
	var d bytes.Buffer
	if err := s.CheckpointDelta(&d); err != nil {
		t.Fatalf("retry after failed delta: %v", err)
	}
	got, err := RestoreChain(bytes.NewReader(base.Bytes()), bytes.NewReader(d.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != s.Checksum() {
		t.Fatalf("retried delta chain checksum differs")
	}
}
