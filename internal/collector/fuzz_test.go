package collector

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"

	"hitlist6/internal/addr"
)

// The fuzz layer pins the durable-corpus contract from both directions.
// FuzzSnapshotRoundTrip drives arbitrary observe streams through
// snapshot → restore and requires an equal Checksum; FuzzOpenSnapshot
// feeds arbitrary bytes — seeded with the checked-in golden fixture so
// coverage starts inside the real format — to OpenSnapshot and requires
// an error or a faithful corpus, never a panic. Run them continuously
// with:
//
//	go test ./internal/collector -run '^$' -fuzz '^FuzzSnapshotRoundTrip$' -fuzztime 30s
//	go test ./internal/collector -run '^$' -fuzz '^FuzzOpenSnapshot$' -fuzztime 30s

// decodeObserveStream turns fuzz bytes into an observe stream: each
// 13-byte chunk is (hi-seed, lo-seed, ts-delta, server). The seeds go
// through splitmix so a byte-flipping fuzzer still reaches diverse
// addresses, while short inputs stay meaningful.
func decodeObserveStream(data []byte) (addrs []addr.Addr, times []int64, servers []int) {
	const rec = 13
	base := int64(1643068800)
	for off := 0; off+rec <= len(data) && len(addrs) < 4096; off += rec {
		hiSeed := uint64(binary.LittleEndian.Uint32(data[off:]))
		loSeed := uint64(binary.LittleEndian.Uint32(data[off+4:]))
		dt := int64(int32(binary.LittleEndian.Uint32(data[off+8:])))
		server := int(int8(data[off+12]))

		// A few address shapes: clustered /64s, EUI-64 IIDs, shared IIDs.
		var a addr.Addr
		hi := 0x20010db8_00000000 | mix64(hiSeed)&0xffff_0007
		switch loSeed % 4 {
		case 0:
			a = addr.FromParts(hi, mix64(loSeed)%512)
		case 1:
			mac := addr.MAC{byte(loSeed), byte(loSeed >> 8), byte(loSeed >> 16), 0x44, 0x55, 0x66}
			a = addr.FromParts(hi, uint64(addr.EUI64FromMAC(mac)))
		case 2:
			a = addr.FromParts(hi, 0xdead_beef_0000_0001)
		default:
			a = addr.FromParts(hi, mix64(loSeed))
		}
		addrs = append(addrs, a)
		times = append(times, base+dt)
		servers = append(servers, server%40)
	}
	return
}

func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x01\x00\x00\x00\x02\x00\x00\x00\x10\x00\x00\x00\x05"))
	// A structured seed: several records of each shape.
	seed := make([]byte, 0, 13*32)
	for i := 0; i < 32; i++ {
		var rec [13]byte
		binary.LittleEndian.PutUint32(rec[0:], uint32(i*7))
		binary.LittleEndian.PutUint32(rec[4:], uint32(i))
		binary.LittleEndian.PutUint32(rec[8:], uint32(i*100003))
		rec[12] = byte(i)
		seed = append(seed, rec[:]...)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		addrs, times, servers := decodeObserveStream(data)
		c := New()
		for i := range addrs {
			c.ObserveUnix(addrs[i], times[i], servers[i])
		}
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatalf("Snapshot of a live collector failed: %v", err)
		}
		got, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("restore of a fresh snapshot failed: %v", err)
		}
		if got.Checksum() != c.Checksum() {
			t.Fatalf("round-trip checksum drifted (%d events, %d addrs)", len(addrs), c.NumAddrs())
		}
		if got.NumAddrs() != c.NumAddrs() || got.NumIIDs() != c.NumIIDs() ||
			got.TotalObservations() != c.TotalObservations() {
			t.Fatalf("round-trip counts drifted")
		}
	})
}

func FuzzOpenSnapshot(f *testing.F) {
	// Seed with the real format: the golden fixture, a fresh tiny
	// snapshot, an empty snapshot, and a spread of near-valid husks.
	if raw, err := os.ReadFile(goldenSnapshotPath); err == nil {
		f.Add(raw)
	}
	var empty bytes.Buffer
	if err := New().Snapshot(&empty); err == nil {
		f.Add(empty.Bytes())
	}
	tiny := New()
	tiny.ObserveUnix(addr.MustParse("2001:db8::1"), 1650000000, 1)
	tiny.ObserveUnix(addr.EUI64Addr(addr.MustParse("2001:db8:5::").P64(), addr.MAC{1, 2, 3, 4, 5, 6}), 1650000500, 2)
	var tinyBuf bytes.Buffer
	if err := tiny.Snapshot(&tinyBuf); err == nil {
		f.Add(tinyBuf.Bytes())
	}
	f.Add([]byte("h6corps1"))
	f.Add([]byte("h6corps1\x00\x00\x00\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := OpenSnapshot(bytes.NewReader(data))
		if err != nil {
			if c != nil {
				t.Fatalf("error return carries a non-nil collector")
			}
			return
		}
		// Whatever restored must be internally consistent: every read API
		// walk must terminate, and a re-snapshot must round-trip to the
		// same checksum (i.e. nothing corrupt was silently accepted).
		sum := c.Checksum()
		var buf bytes.Buffer
		if err := c.Snapshot(&buf); err != nil {
			t.Fatalf("restored collector cannot re-snapshot: %v", err)
		}
		again, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-snapshot of restored collector does not restore: %v", err)
		}
		if again.Checksum() != sum {
			t.Fatalf("restored corpus is not stable under re-snapshot")
		}
	})
}
