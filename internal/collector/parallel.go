package collector

import "hitlist6/internal/addr"

// Parallel read plan: the slabs and index tables are plain arrays, so a
// reader can be handed any [lo, hi) index window and scan it without
// coordination. These range iterators are the collector's side of the
// analysis engine's fold contract (see internal/fold): a parallel scan
// partitions [0, N) into contiguous ranges — the slab chunks are the
// natural work unit — folds each range into a partial, and merges the
// partials in ascending range order, which reproduces the serial scan's
// element order exactly.
//
// All of them require the no-writer invariant that every read API here
// already has: reads must not run concurrently with Observe/Merge/Absorb
// (Store is the concurrency boundary for live ingest).

// AddrsRange iterates the (address, record) pairs with slab indices in
// [lo, hi), in slab order; the callback returning false stops. The full
// range [0, NumAddrs()) visits exactly what Addrs does.
func (c *Collector) AddrsRange(lo, hi int, fn func(a addr.Addr, r AddrRecord) bool) {
	if lo < 0 {
		lo = 0
	}
	if n := int(c.addrRecs.n); hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		e := c.addrRecs.at(uint32(i))
		if !fn(e.key, e.rec) {
			return
		}
	}
}

// NumIIDSlots returns the size of the IID index table: the iteration
// space of IIDSlotsRange. Most slots are empty; the occupied ones are
// exactly the NumIIDs unique IIDs.
func (c *Collector) NumIIDSlots() int { return len(c.iidIdx) }

// IIDSlotsRange iterates the (IID, view) pairs whose index-table slots
// fall in [lo, hi), in slot order; the callback returning false stops.
// Covering [0, NumIIDSlots()) visits exactly what IIDs does, in the same
// order.
func (c *Collector) IIDSlotsRange(lo, hi int, fn func(iid addr.IID, r IIDView) bool) {
	if lo < 0 {
		lo = 0
	}
	if n := len(c.iidIdx); hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		v := c.iidIdx[i]
		if v == 0 {
			continue
		}
		ref := v - 1
		if !fn(c.iidKeyOf(ref), IIDView{c: c, ref: ref}) {
			return
		}
	}
}

// NumPromotedIIDs returns the size of the promoted IID slab: the
// iteration space of EUI64IIDsRange.
func (c *Collector) NumPromotedIIDs() int { return int(c.iidRecs.n) }

// EUI64IIDsRange iterates the tracked (EUI-64) IIDs whose promoted-slab
// indices fall in [lo, hi), in slab order; the callback returning false
// stops. Covering [0, NumPromotedIIDs()) visits exactly what EUI64IIDs
// does, in the same order.
func (c *Collector) EUI64IIDsRange(lo, hi int, fn func(iid addr.IID, r IIDView) bool) {
	if lo < 0 {
		lo = 0
	}
	if n := int(c.iidRecs.n); hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		e := c.iidRecs.at(uint32(i))
		if e.spans == spanNone {
			continue
		}
		if !fn(e.key, IIDView{c: c, ref: uint32(i) | promotedTag}) {
			return
		}
	}
}
