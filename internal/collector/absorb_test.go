package collector

import (
	"testing"
	"time"

	"hitlist6/internal/addr"
)

// The Absorb tests pin the chunk-level merge to the Scalable-
// Commutativity bar the record-by-record Merge already meets: for any
// split of one observation stream into donor and destination — key
// ranges colliding or not — Absorb's result must be byte-equivalent
// (canonical Checksum) to Merge's and to a serial single-collector run.

// buildFromStream folds a slice of the golden stream into a fresh
// collector.
func buildFromStream(addrs []addr.Addr, times []int64, servers []int, lo, hi int) *Collector {
	c := New()
	for i := lo; i < hi; i++ {
		c.ObserveUnix(addrs[i], times[i], servers[i])
	}
	return c
}

// absorbCase checks Absorb(dst, donor) against Merge and serial for one
// donor/destination split.
func absorbCase(t *testing.T, name string, mkDst, mkDonor func() *Collector, serial *Collector) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		want := serial.Checksum()

		viaMerge := mkDst()
		viaMerge.Merge(mkDonor())
		if got := viaMerge.Checksum(); got != want {
			t.Fatalf("record-by-record Merge checksum differs from serial")
		}

		viaAbsorb := mkDst()
		donor := mkDonor()
		viaAbsorb.Absorb(donor)
		if got := viaAbsorb.Checksum(); got != want {
			t.Fatalf("Absorb checksum differs from serial")
		}
		if donor.NumAddrs() != 0 || donor.TotalObservations() != 0 {
			t.Fatalf("Absorb left state in the donor")
		}

		// The absorbed collector must stay fully writable: replay the
		// donor's events again and compare against the serial double-count.
		// (Covers index-table consistency after bulk adoption.)
		probe := mkDonor()
		probe.Addrs(func(a addr.Addr, r AddrRecord) bool {
			viaAbsorb.ObserveUnix(a, r.First, 0)
			return true
		})
		if viaAbsorb.NumAddrs() != serial.NumAddrs() {
			t.Fatalf("post-absorb observes grew the address set: %d vs %d",
				viaAbsorb.NumAddrs(), serial.NumAddrs())
		}
	})
}

func TestAbsorbEquivalence(t *testing.T) {
	addrs, times, servers := goldenStream()
	n := len(addrs)
	serial := buildFromStream(addrs, times, servers, 0, n)

	// Colliding key ranges: the golden stream's small address pool makes
	// any contiguous split share many addresses and IIDs across the cut.
	absorbCase(t, "colliding halves",
		func() *Collector { return buildFromStream(addrs, times, servers, 0, n/2) },
		func() *Collector { return buildFromStream(addrs, times, servers, n/2, n) },
		serial)

	// Empty destination: the wholesale-steal path.
	absorbCase(t, "into empty",
		New,
		func() *Collector { return buildFromStream(addrs, times, servers, 0, n) },
		serial)

	// Empty donor.
	absorbCase(t, "empty donor",
		func() *Collector { return buildFromStream(addrs, times, servers, 0, n) },
		New,
		serial)

	// Address-hash partitioning, the ingest shard shape: addresses never
	// collide across parts, but IIDs may (the golden stream's shared
	// 0xdeadbeef IID spans /64s in both halves), so this exercises the
	// collision fallback behind the disjointness probe.
	hashFilter := func(want uint64) func() *Collector {
		return func() *Collector {
			c := New()
			for i := range addrs {
				if addrs[i].Hash64()%2 == want {
					c.ObserveUnix(addrs[i], times[i], servers[i])
				}
			}
			return c
		}
	}
	absorbCase(t, "addr-hash shards", hashFilter(0), hashFilter(1), serial)

	// IID-parity partitioning: an address's shard is a function of its
	// IID, so both the address and IID key ranges are disjoint by
	// construction — the chunk-adoption fast path end to end.
	iidFilter := func(want uint64) func() *Collector {
		return func() *Collector {
			c := New()
			for i := range addrs {
				if uint64(addrs[i].IID())%2 == want {
					c.ObserveUnix(addrs[i], times[i], servers[i])
				}
			}
			return c
		}
	}
	absorbCase(t, "disjoint iid ranges", iidFilter(0), iidFilter(1), serial)
}

// TestAbsorbChainsManyDonors mirrors the Store's real call pattern: a
// long sequence of Absorbs — disjoint shard parts first, then colliding
// re-deliveries — must stay equivalent to serial throughout, across
// chunk-boundary crossings (donors larger than one chunk).
func TestAbsorbChainsManyDonors(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk stream in -short mode")
	}
	// A stream long enough that slabs cross the first chunk boundary
	// (chunkSize records) while absorbing.
	const n = 3 * chunkSize
	state := uint64(0xabcdef)
	addrs := make([]addr.Addr, n)
	times := make([]int64, n)
	for i := range addrs {
		r := splitmix64(&state)
		addrs[i] = addr.FromParts(0x20010db8_00000000|r&0xffff, splitmix64(&state)%uint64(n))
		times[i] = 1643068800 + int64(i%100000)
	}

	serial := New()
	for i := range addrs {
		serial.ObserveUnix(addrs[i], times[i], i%9)
	}

	// First wave partitions by IID value, so every Absorb in the chain
	// is fully disjoint and takes the chunk-adoption path across slab
	// chunk boundaries.
	const shards = 7
	merged := New()
	for s := 0; s < shards; s++ {
		part := New()
		for i := range addrs {
			if uint64(addrs[i].IID())%shards == uint64(s) {
				part.ObserveUnix(addrs[i], times[i], i%9)
			}
		}
		merged.Absorb(part)
	}
	if merged.Checksum() != serial.Checksum() {
		t.Fatalf("disjoint absorb chain diverged from serial")
	}

	// Second wave: re-deliver every shard's events (colliding path) and
	// compare against a serial double run.
	serial2 := New()
	for round := 0; round < 2; round++ {
		for i := range addrs {
			serial2.ObserveUnix(addrs[i], times[i], i%9)
		}
	}
	for s := 0; s < shards; s++ {
		part := New()
		for i := range addrs {
			if uint64(addrs[i].IID())%shards == uint64(s) {
				part.ObserveUnix(addrs[i], times[i], i%9)
			}
		}
		merged.Absorb(part)
	}
	if merged.Checksum() != serial2.Checksum() {
		t.Fatalf("colliding absorb chain diverged from serial double run")
	}
}

// TestMergeSlotOrderPathology is the regression test for a quadratic
// blowup this PR found latent in Merge: iterating the donor's IID
// table in slot order means inserting into the destination in
// ascending hash-home order, and when both tables share a mask with
// the destination near its load threshold, that sweep welds existing
// probe runs into a single run covering a third of the table —
// lookups behind the front degrade to O(table), and merging two
// ~600k-record halves took minutes instead of milliseconds. Merge now
// processes promoted entries in slab order and singletons in
// ref-sorted order (hash-uncorrelated); this test merges exactly the
// shape that triggered the pathology under a wall-clock ceiling ~50x
// above the fixed cost and ~100x below the broken one.
func TestMergeSlotOrderPathology(t *testing.T) {
	if testing.Short() {
		t.Skip("million-record merge in -short mode")
	}
	events, _ := collectorBenchStream()
	build := func(part uint64) *Collector {
		c := New()
		for _, ev := range events {
			if ev.a.Hash64()%2 == part {
				c.ObserveUnix(ev.a, ev.ts, ev.server)
			}
		}
		return c
	}
	dst, donor := build(0), build(1)
	done := make(chan struct{})
	go func() {
		dst.Merge(donor)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("Merge of hash-partitioned halves did not finish in 60s: slot-order probe pathology is back")
	}

	serial := New()
	for _, ev := range events {
		serial.ObserveUnix(ev.a, ev.ts, ev.server)
	}
	if dst.Checksum() != serial.Checksum() {
		t.Fatal("order-decorrelated merge changed the result")
	}
}

// TestSlabAdoptAll exercises the chunk mover directly across alignment
// cases: empty destination, misaligned tails, chunk-aligned adoption,
// partial donor heads.
func TestSlabAdoptAll(t *testing.T) {
	fill := func(n int) *slab[uint64] {
		s := &slab[uint64]{}
		for i := 0; i < n; i++ {
			idx := s.alloc()
			*s.at(idx) = uint64(i) | uint64(n)<<32
		}
		return s
	}
	check := func(t *testing.T, s *slab[uint64], dstN, donorN int) {
		t.Helper()
		if int(s.n) != dstN+donorN {
			t.Fatalf("adopted slab holds %d, want %d", s.n, dstN+donorN)
		}
		for i := 0; i < dstN; i++ {
			if got := *s.at(uint32(i)); got != uint64(i)|uint64(dstN)<<32 {
				t.Fatalf("dst record %d corrupted: %x", i, got)
			}
		}
		for i := 0; i < donorN; i++ {
			if got := *s.at(uint32(dstN + i)); got != uint64(i)|uint64(donorN)<<32 {
				t.Fatalf("donor record %d landed wrong: %x", i, got)
			}
		}
		// The adopted slab must keep allocating contiguously.
		idx := s.alloc()
		if int(idx) != dstN+donorN {
			t.Fatalf("post-adopt alloc returned %d, want %d", idx, dstN+donorN)
		}
	}
	cases := []struct{ dst, donor int }{
		{0, 5},
		{0, chunkSize + 3},
		{5, 7},
		{chunkSize, 100},               // aligned, partial donor head
		{chunkSize, chunkSize},         // aligned, full donor head
		{chunkSize, 2*chunkSize + 17},  // aligned, multi-chunk donor
		{chunkSize + 3, chunkSize + 9}, // misaligned, crossing boundaries
		{2 * chunkSize, 0},
	}
	for _, tc := range cases {
		s := fill(tc.dst)
		s.adoptAll(fill(tc.donor))
		check(t, s, tc.dst, tc.donor)
	}
}
