package collector

import (
	"encoding/binary"
	"fmt"
	"io"

	"hitlist6/internal/addr"
	"hitlist6/internal/snapfmt"
)

// Delta snapshots are the write-side half of the tiered corpus: instead
// of re-serializing O(corpus) on every checkpoint, a delta carries only
// the slab blocks dirtied since the last checkpoint plus every block of
// new records past the watermarks (see dirty.go). A chain is one full
// snapshot (sequence 0) followed by deltas 1..k; restore is
// RestoreChain, and folding a chain back into a single full snapshot
// (compaction) is simply restoring it and writing Snapshot again.
//
// What a delta deliberately does NOT carry:
//
//   - Singleton-IID references: fully derivable. A new address whose
//     IID has no promoted entry is a singleton; promotions that
//     happened since the base always materialize a new promoted entry,
//     which the delta carries, and applying it overwrites the stale
//     singleton slot exactly as the live path did.
//   - Prefix sets: existing records never change their keys (ApplyDelta
//     rejects a delta that tries), so only new addresses can introduce
//     prefixes, and apply derives them incrementally.
//
// Chain linkage is by (parentSeq, base record counts, base total):
// applying a delta to anything but the state it was cut against fails
// fast instead of producing a silently wrong corpus. Every structural
// lie a block can tell — overlap gaps, count mismatches, key rewrites
// below the watermark, span-chain damage — is an error, never a panic
// and never a partially mutated result that escapes (on error the
// target collector must be discarded; RestoreChain does).
//
//lint:durable-path delta snapshots are the incremental half of crash recovery
const (
	deltaMagic   = "h6delta1"
	deltaVersion = 1

	secDeltaMeta  = 1
	secDeltaAddrs = 2
	secDeltaIIDs  = 3
	secDeltaSpans = 4

	// deltaMetaWire: parentSeq, seq, baseTotal, total, baseAddrN, addrN,
	// baseIIDN, iidN, baseSpanN, spanN — ten big-endian u64s.
	deltaMetaWire = 80
	// deltaBlockHdr prefixes each block: blockIdx u32, record count u32.
	deltaBlockHdr = 8
)

// SnapshotDelta writes the blocks dirtied or grown since the last
// checkpoint. It is read-only on c — the caller advances the watermark
// with MarkCheckpointedDelta once the bytes are durable — and errors if
// the collector has no checkpoint baseline to delta against. Like
// Snapshot it does not buffer; hand it a *bufio.Writer for raw files.
func (c *Collector) SnapshotDelta(w io.Writer) error {
	if !c.ckpt.based {
		return fmt.Errorf("collector: delta without a base checkpoint")
	}
	sw, err := snapfmt.NewWriter(w, deltaMagic, deltaVersion)
	if err != nil {
		return err
	}

	if err := sw.Begin(secDeltaMeta, deltaMetaWire); err != nil {
		return err
	}
	var meta [deltaMetaWire]byte
	binary.BigEndian.PutUint64(meta[0:], c.ckpt.seq)
	binary.BigEndian.PutUint64(meta[8:], c.ckpt.seq+1)
	binary.BigEndian.PutUint64(meta[16:], c.ckpt.baseTotal)
	binary.BigEndian.PutUint64(meta[24:], c.total)
	binary.BigEndian.PutUint64(meta[32:], uint64(c.ckpt.addrBase))
	binary.BigEndian.PutUint64(meta[40:], uint64(c.addrRecs.n))
	binary.BigEndian.PutUint64(meta[48:], uint64(c.ckpt.iidBase))
	binary.BigEndian.PutUint64(meta[56:], uint64(c.iidRecs.n))
	binary.BigEndian.PutUint64(meta[64:], uint64(c.ckpt.spanBase))
	binary.BigEndian.PutUint64(meta[72:], uint64(c.spans.n))
	if _, err := sw.Write(meta[:]); err != nil {
		return err
	}
	if err := sw.End(); err != nil {
		return err
	}

	buf := make([]byte, 0, wireBatch*addrEntryWire)

	addrBlocks := deltaBlocks(c.ckpt.addrBase, c.addrRecs.n, &c.ckpt.dirtyAddr)
	if err := writeDeltaSection(sw, secDeltaAddrs, addrBlocks, addrEntryWire, &buf, func(i uint32, b []byte) []byte {
		e := c.addrRecs.at(i)
		b = append(b, e.key[:]...)
		b = binary.BigEndian.AppendUint64(b, uint64(e.rec.First))
		b = binary.BigEndian.AppendUint64(b, uint64(e.rec.Last))
		b = binary.BigEndian.AppendUint32(b, e.rec.Count)
		return binary.BigEndian.AppendUint32(b, e.rec.Servers)
	}); err != nil {
		return err
	}

	iidBlocks := deltaBlocks(c.ckpt.iidBase, c.iidRecs.n, &c.ckpt.dirtyIID)
	if err := writeDeltaSection(sw, secDeltaIIDs, iidBlocks, iidEntryWire, &buf, func(i uint32, b []byte) []byte {
		e := c.iidRecs.at(i)
		b = binary.BigEndian.AppendUint64(b, uint64(e.key))
		b = binary.BigEndian.AppendUint64(b, uint64(e.first))
		b = binary.BigEndian.AppendUint64(b, uint64(e.last))
		b = binary.BigEndian.AppendUint32(b, e.count)
		b = binary.BigEndian.AppendUint32(b, e.spans)
		return binary.BigEndian.AppendUint32(b, e.p64n)
	}); err != nil {
		return err
	}

	spanBlocks := deltaBlocks(c.ckpt.spanBase, c.spans.n, &c.ckpt.dirtySpan)
	if err := writeDeltaSection(sw, secDeltaSpans, spanBlocks, spanEntryWire, &buf, func(i uint32, b []byte) []byte {
		n := c.spans.at(i)
		b = binary.BigEndian.AppendUint64(b, uint64(n.p64))
		b = binary.BigEndian.AppendUint64(b, uint64(n.first))
		b = binary.BigEndian.AppendUint64(b, uint64(n.last))
		return binary.BigEndian.AppendUint32(b, n.next)
	}); err != nil {
		return err
	}

	return sw.Close()
}

// writeDeltaSection emits one slab's block list: u32 block count, then
// per block [blockIdx u32][n u32][n fixed-size entries].
func writeDeltaSection(sw *snapfmt.Writer, id uint32, blocks []deltaBlock, entry int, buf *[]byte, enc func(i uint32, b []byte) []byte) error {
	size := uint64(4)
	for _, bl := range blocks {
		size += deltaBlockHdr + uint64(bl.hi-bl.lo)*uint64(entry)
	}
	if err := sw.Begin(id, size); err != nil {
		return err
	}
	b := (*buf)[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(len(blocks)))
	var err error
	for _, bl := range blocks {
		b = binary.BigEndian.AppendUint32(b, bl.idx)
		b = binary.BigEndian.AppendUint32(b, bl.hi-bl.lo)
		for i := bl.lo; i < bl.hi; i++ {
			b = enc(i, b)
			if b = flushBatch(sw, b, &err); err != nil {
				return err
			}
		}
	}
	err = endSection(sw, b)
	*buf = b[:0]
	return err
}

// ApplyDelta overlays one delta onto c, which must be exactly the chain
// state the delta was cut against (seq, counts and total all match — a
// collector freshly restored by OpenSnapshot, or one that already
// applied the preceding deltas). On success c advances to the delta's
// sequence. On error c may be partially mutated and MUST be discarded;
// RestoreChain wraps this contract for callers restoring from files.
func (c *Collector) ApplyDelta(r io.Reader) error {
	sr, err := snapfmt.NewReader(r, deltaMagic)
	if err != nil {
		return fmt.Errorf("collector: delta: %w", err)
	}
	if v := sr.Version(); v != deltaVersion {
		return fmt.Errorf("collector: delta version %d unsupported (have %d)", v, deltaVersion)
	}

	if err := expectSection(sr, secDeltaMeta, deltaMetaWire); err != nil {
		return err
	}
	var meta [deltaMetaWire]byte
	if _, err := io.ReadFull(sr, meta[:]); err != nil {
		return fmt.Errorf("collector: delta meta: %w", err)
	}
	if err := sr.End(); err != nil {
		return fmt.Errorf("collector: delta meta: %w", err)
	}
	parentSeq := binary.BigEndian.Uint64(meta[0:])
	seq := binary.BigEndian.Uint64(meta[8:])
	baseTotal := binary.BigEndian.Uint64(meta[16:])
	total := binary.BigEndian.Uint64(meta[24:])
	baseAddrN := binary.BigEndian.Uint64(meta[32:])
	addrN := binary.BigEndian.Uint64(meta[40:])
	baseIIDN := binary.BigEndian.Uint64(meta[48:])
	iidN := binary.BigEndian.Uint64(meta[56:])
	baseSpanN := binary.BigEndian.Uint64(meta[64:])
	spanN := binary.BigEndian.Uint64(meta[72:])

	if !c.ckpt.based || parentSeq != c.ckpt.seq {
		return fmt.Errorf("collector: delta parent seq %d does not extend chain at seq %d", parentSeq, c.ckpt.seq)
	}
	if seq != parentSeq+1 {
		return fmt.Errorf("collector: delta seq %d does not follow parent %d", seq, parentSeq)
	}
	if baseTotal != c.total || baseAddrN != uint64(c.addrRecs.n) ||
		baseIIDN != uint64(c.iidRecs.n) || baseSpanN != uint64(c.spans.n) {
		return fmt.Errorf("collector: delta base (%d obs, %d/%d/%d records) does not match corpus (%d obs, %d/%d/%d)",
			baseTotal, baseAddrN, baseIIDN, baseSpanN, c.total, c.addrRecs.n, c.iidRecs.n, c.spans.n)
	}
	if addrN > uint64(maxSlabIndex) || iidN > uint64(maxSlabIndex) || spanN > uint64(maxSlabIndex) {
		return fmt.Errorf("collector: delta counts %d/%d/%d exceed slab addressing", addrN, iidN, spanN)
	}
	if addrN < baseAddrN || iidN < baseIIDN || spanN < baseSpanN || total < baseTotal {
		return fmt.Errorf("collector: delta shrinks the corpus")
	}

	buf := make([]byte, wireBatch*addrEntryWire)

	if err := applyDeltaSection(sr, secDeltaAddrs, buf, baseAddrN, addrN, addrEntryWire,
		func() uint32 { return c.addrRecs.n },
		func(i uint32, b []byte) error {
			existing := i < uint32(baseAddrN)
			var e *addrEntry
			if existing {
				e = c.addrRecs.at(i)
				if string(e.key[:]) != string(b[0:16]) {
					return fmt.Errorf("block rewrites address key at %d", i)
				}
			} else {
				e = c.addrRecs.at(c.addrRecs.alloc())
				copy(e.key[:], b[0:16])
			}
			e.rec.First = int64(binary.BigEndian.Uint64(b[16:]))
			e.rec.Last = int64(binary.BigEndian.Uint64(b[24:]))
			e.rec.Count = binary.BigEndian.Uint32(b[32:])
			e.rec.Servers = binary.BigEndian.Uint32(b[36:])
			return nil
		}); err != nil {
		return fmt.Errorf("collector: delta addrs: %w", err)
	}
	if uint64(c.addrRecs.n) != addrN {
		return fmt.Errorf("collector: delta addrs: blocks cover %d records, meta declares %d", c.addrRecs.n, addrN)
	}

	if err := applyDeltaSection(sr, secDeltaIIDs, buf, baseIIDN, iidN, iidEntryWire,
		func() uint32 { return c.iidRecs.n },
		func(i uint32, b []byte) error {
			key := binary.BigEndian.Uint64(b[0:])
			var e *iidEntry
			if i < uint32(baseIIDN) {
				e = c.iidRecs.at(i)
				if uint64(e.key) != key {
					return fmt.Errorf("block rewrites IID key at %d", i)
				}
			} else {
				e = c.iidRecs.at(c.iidRecs.alloc())
				e.key = addr.IID(key)
			}
			e.first = int64(binary.BigEndian.Uint64(b[8:]))
			e.last = int64(binary.BigEndian.Uint64(b[16:]))
			e.count = binary.BigEndian.Uint32(b[24:])
			e.spans = binary.BigEndian.Uint32(b[28:])
			e.p64n = binary.BigEndian.Uint32(b[32:])
			if e.spans != spanNone && uint64(e.spans) >= spanN {
				return fmt.Errorf("IID %d span head %d out of %d", i, e.spans, spanN)
			}
			return nil
		}); err != nil {
		return fmt.Errorf("collector: delta iids: %w", err)
	}
	if uint64(c.iidRecs.n) != iidN {
		return fmt.Errorf("collector: delta iids: blocks cover %d records, meta declares %d", c.iidRecs.n, iidN)
	}

	if err := applyDeltaSection(sr, secDeltaSpans, buf, baseSpanN, spanN, spanEntryWire,
		func() uint32 { return c.spans.n },
		func(i uint32, b []byte) error {
			p64 := binary.BigEndian.Uint64(b[0:])
			var n *spanNode
			if i < uint32(baseSpanN) {
				n = c.spans.at(i)
				if uint64(n.p64) != p64 {
					// A span node's /64 is fixed at allocation; only its
					// window and chain link ever change.
					return fmt.Errorf("block rewrites span %d's /64", i)
				}
			} else {
				n = c.spans.at(c.spans.alloc())
				n.p64 = addr.Prefix64(p64)
			}
			n.first = int64(binary.BigEndian.Uint64(b[8:]))
			n.last = int64(binary.BigEndian.Uint64(b[16:]))
			n.next = binary.BigEndian.Uint32(b[24:])
			if n.next != spanNone && uint64(n.next) >= spanN {
				return fmt.Errorf("span %d chains to %d out of %d", i, n.next, spanN)
			}
			return nil
		}); err != nil {
		return fmt.Errorf("collector: delta spans: %w", err)
	}
	if uint64(c.spans.n) != spanN {
		return fmt.Errorf("collector: delta spans: blocks cover %d records, meta declares %d", c.spans.n, spanN)
	}

	if _, _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return fmt.Errorf("collector: delta carries trailing sections")
		}
		return fmt.Errorf("collector: delta end: %w", err)
	}

	if err := c.indexDeltaRecords(uint32(baseAddrN), uint32(baseIIDN)); err != nil {
		return err
	}
	if err := c.validateSpans(); err != nil {
		return fmt.Errorf("collector: delta: %w", err)
	}
	c.total = total
	c.markClean(seq)
	return nil
}

// applyDeltaSection streams one slab's block list, overwriting existing
// records and appending new ones. Blocks must arrive in strictly
// ascending index order with the exact write-side shape hi ==
// min(newN, (idx+1)*deltaBlockSize): anything else is a gap or overlap.
func applyDeltaSection(sr *snapfmt.Reader, id uint32, scratch []byte, baseN, newN uint64, entry int,
	slabLen func() uint32, apply func(i uint32, b []byte) error) error {

	gotID, size, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("delta ends before section %d", id)
		}
		return err
	}
	if gotID != id {
		return fmt.Errorf("section %d where %d expected", gotID, id)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(sr, hdr[:]); err != nil {
		return err
	}
	blocks := binary.BigEndian.Uint32(hdr[:])
	maxBlocks := uint64(0)
	if newN > 0 {
		maxBlocks = (newN-1)>>deltaBlockBits + 1
	}
	if uint64(blocks) > maxBlocks {
		return fmt.Errorf("%d blocks over a %d-record slab", blocks, newN)
	}
	declared := uint64(4)
	prev := int64(-1)
	for bi := uint32(0); bi < blocks; bi++ {
		var bh [deltaBlockHdr]byte
		if _, err := io.ReadFull(sr, bh[:]); err != nil {
			return err
		}
		idx := binary.BigEndian.Uint32(bh[0:])
		n := binary.BigEndian.Uint32(bh[4:])
		if int64(idx) <= prev {
			return fmt.Errorf("block %d out of order", idx)
		}
		prev = int64(idx)
		lo := uint64(idx) << deltaBlockBits
		hi := lo + uint64(n)
		wantHi := (uint64(idx) + 1) << deltaBlockBits
		if wantHi > newN {
			wantHi = newN
		}
		if n == 0 || hi != wantHi {
			return fmt.Errorf("block %d covers [%d,%d), want [%d,%d)", idx, lo, hi, lo, wantHi)
		}
		if lo > uint64(slabLen()) {
			return fmt.Errorf("block %d leaves a gap at %d", idx, slabLen())
		}
		declared += deltaBlockHdr + uint64(n)*uint64(entry)
		per := uint64(len(scratch)) / uint64(entry)
		for done := uint64(0); done < uint64(n); {
			batch := min(uint64(n)-done, per)
			b := scratch[:batch*uint64(entry)]
			if _, err := io.ReadFull(sr, b); err != nil {
				return err
			}
			for k := uint64(0); k < batch; k++ {
				if err := apply(uint32(lo+done+k), b[k*uint64(entry):(k+1)*uint64(entry)]); err != nil {
					return err
				}
			}
			done += batch
		}
	}
	if declared != size {
		return fmt.Errorf("section declares %d bytes but blocks cover %d", size, declared)
	}
	return sr.End()
}

// indexDeltaRecords wires the new records into the live index tables:
// new addresses and their prefixes, new promoted IIDs (overwriting the
// slot of a singleton they promote), and derived singleton references
// for new addresses whose IID has no promoted entry. Existing records'
// index entries are untouched — in-place mutations never change keys.
func (c *Collector) indexDeltaRecords(baseAddrN, baseIIDN uint32) error {
	if need := tableSizeFor(uint64(c.addrRecs.n)); need > len(c.addrIdx) {
		c.resizeAddrIdx(need)
	}
	for i := baseAddrN; i < c.addrRecs.n; i++ {
		e := c.addrRecs.at(i)
		_, slot, ok := c.findAddr(e.key)
		if ok {
			return fmt.Errorf("collector: delta duplicates address at record %d", i)
		}
		c.addrIdx[slot] = i + 1
		c.p48s.insert(uint64(e.key.P48()))
		c.p64s.insert(uint64(e.key.P64()))
	}

	// Worst case every new promoted entry and every new address adds an
	// IID table entry; presizing once means no grow mid-loop.
	maxIIDs := uint64(c.iidUsed) + uint64(c.iidRecs.n-baseIIDN) + uint64(c.addrRecs.n-baseAddrN)
	if need := tableSizeFor(maxIIDs); need > len(c.iidIdx) {
		c.resizeIIDIdx(need)
	}
	for ri := baseIIDN; ri < c.iidRecs.n; ri++ {
		key := c.iidRecs.at(ri).key
		ref, slot, ok := c.findIID(key)
		switch {
		case !ok:
			c.iidIdx[slot] = (ri | promotedTag) + 1
			c.iidUsed++
		case ref&promotedTag == 0:
			// The new promoted entry supersedes an existing singleton: the
			// promotion the live path performed. findIID's slot is the
			// occupied slot on a hit, so this overwrites in place.
			c.iidIdx[slot] = (ri | promotedTag) + 1
		default:
			return fmt.Errorf("collector: delta duplicates promoted IID %016x", uint64(key))
		}
	}
	for i := baseAddrN; i < c.addrRecs.n; i++ {
		iid := c.addrRecs.at(i).key.IID()
		ref, slot, ok := c.findIID(iid)
		switch {
		case !ok:
			c.iidIdx[slot] = i + 1
			c.iidUsed++
		case ref&promotedTag != 0:
			// Promoted entry (new or pre-existing) already covers it.
		default:
			// Two addresses share an unpromoted IID: the live path would
			// have promoted, so a valid delta cannot produce this.
			return fmt.Errorf("collector: delta leaves IID %016x shared but unpromoted", uint64(iid))
		}
	}
	return nil
}

// RestoreChain restores a checkpoint chain: a full snapshot stream
// followed by its deltas in sequence order. Any failure — damage,
// wrong order, wrong base — returns an error and no collector; a
// partially applied chain never escapes.
func RestoreChain(base io.Reader, deltas ...io.Reader) (*Collector, error) {
	c, err := OpenSnapshot(base)
	if err != nil {
		return nil, err
	}
	for i, d := range deltas {
		if err := c.ApplyDelta(d); err != nil {
			return nil, fmt.Errorf("collector: chain delta %d: %w", i+1, err)
		}
	}
	return c, nil
}
