package collector

import (
	"bytes"
	"testing"
)

// FuzzDeltaSnapshot feeds arbitrary bytes to ApplyDelta against a real
// restored base: the contract is an error or a faithful corpus — never
// a panic, never a partially applied chain that escapes. Seeds start
// inside the real format (a valid delta plus near-valid husks) so
// coverage begins past the magic check. Run continuously with:
//
//	go test ./internal/collector -run '^$' -fuzz '^FuzzDeltaSnapshot$' -fuzztime 30s
func FuzzDeltaSnapshot(f *testing.F) {
	addrs, times, servers := goldenStream()
	c := New()
	feedGolden(c, addrs, times, servers, 0, 300)
	var base bytes.Buffer
	if err := c.Snapshot(&base); err != nil {
		f.Fatal(err)
	}
	c.MarkCheckpointedFull()
	feedGolden(c, addrs, times, servers, 300, 600)
	var delta bytes.Buffer
	if err := c.SnapshotDelta(&delta); err != nil {
		f.Fatal(err)
	}

	f.Add(delta.Bytes())
	f.Add([]byte("h6delta1"))
	f.Add([]byte("h6delta1\x00\x00\x00\x01"))
	f.Add([]byte{})

	baseRaw := base.Bytes()
	f.Fuzz(func(t *testing.T, data []byte) {
		parent, err := OpenSnapshot(bytes.NewReader(baseRaw))
		if err != nil {
			t.Fatalf("base fixture no longer restores: %v", err)
		}
		if err := parent.ApplyDelta(bytes.NewReader(data)); err != nil {
			return // rejected cleanly; the poisoned parent is discarded
		}
		// A delta that applies cleanly (structurally valid records with
		// correct CRCs, whatever their values) must leave an internally
		// consistent corpus: every walk terminates and a full snapshot
		// round-trips to the same checksum — nothing corrupt was silently
		// accepted.
		sum := parent.Checksum()
		var buf bytes.Buffer
		if err := parent.Snapshot(&buf); err != nil {
			t.Fatalf("post-delta collector cannot snapshot: %v", err)
		}
		again, err := OpenSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("post-delta snapshot does not restore: %v", err)
		}
		if again.Checksum() != sum {
			t.Fatalf("post-delta corpus is not stable under re-snapshot")
		}
	})
}
