package collector

import (
	"io"
	"sync"
)

// Store is the single-writer merged view of sharded collection: ingest
// shards accumulate into private Collectors and periodically hand their
// snapshots to one merger goroutine, which folds them in here under the
// write lock. Readers (HTTP stat endpoints, analyses running mid-ingest)
// take the read lock and see a consistent, slightly-stale corpus.
//
// The Collector itself stays single-writer — Store adds the concurrency
// boundary around it instead of pushing locks into the per-sighting hot
// path, which the sharded pipeline keeps lock-free.
type Store struct {
	mu sync.RWMutex
	c  *Collector
	// merges counts ApplyShard calls; useful for snapshot bookkeeping.
	merges uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{c: New()}
}

// ApplyShard folds one shard snapshot into the merged view. The store
// takes ownership: the snapshot must not be used again by its shard
// afterwards (shards swap in a fresh Collector before handing one
// over), which lets the merge adopt whole slab chunks from the donor
// instead of re-inserting record by record (see Collector.Absorb) —
// shards partition the address space by hash, so cross-shard snapshots
// never collide and almost every ApplyShard takes the chunk path.
func (s *Store) ApplyShard(part *Collector) {
	if part == nil {
		return
	}
	s.mu.Lock()
	s.c.Absorb(part)
	s.merges++
	s.mu.Unlock()
}

// View runs fn with read access to the merged corpus. fn must not retain
// the *Collector or mutate it; writes are the merger's alone.
func (s *Store) View(fn func(*Collector)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(s.c)
}

// NumAddrs returns the merged unique-address count.
func (s *Store) NumAddrs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.NumAddrs()
}

// NumIIDs returns the merged unique-IID count.
func (s *Store) NumIIDs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.NumIIDs()
}

// TotalObservations returns the merged raw sighting count.
func (s *Store) TotalObservations() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.TotalObservations()
}

// Merges returns how many shard snapshots have been applied.
func (s *Store) Merges() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.merges
}

// MemoryFootprint estimates the merged corpus's resident bytes (see
// Collector.MemoryFootprint): the number stat endpoints export as
// corpus_bytes.
func (s *Store) MemoryFootprint() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.MemoryFootprint()
}

// Checksum returns the canonical checksum of the merged corpus.
func (s *Store) Checksum() [32]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.Checksum()
}

// Snapshot writes the merged corpus's durable encoding (see
// Collector.Snapshot) under the read lock: writers are held off for the
// duration, readers proceed. This is the daemon checkpoint path — pair
// it with OpenSnapshot and ApplyShard (or ingest.Config.Seed) to
// restore on the next start.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.Snapshot(w)
}

// CheckpointFull writes a full snapshot and advances the delta-chain
// watermark to sequence 0, atomically with respect to ApplyShard: the
// write lock is held across both, so no observation can land between
// the bytes and the mark and silently escape the next delta. The caller
// must make the bytes durable before relying on the chain (the ingest
// layer writes through AtomicWriteFile).
//
//lint:durable-path full checkpoints anchor the delta chain
func (s *Store) CheckpointFull(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.c.Snapshot(w); err != nil {
		return err
	}
	s.c.MarkCheckpointedFull()
	return nil
}

// CheckpointDelta writes the blocks dirtied since the last checkpoint
// and advances the chain sequence, under the same write-lock atomicity
// as CheckpointFull. It fails if no base checkpoint exists; on write
// error the watermark does not advance, so the caller can fall back to
// a full checkpoint without losing anything.
//
//lint:durable-path delta checkpoints extend the chain
func (s *Store) CheckpointDelta(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.c.SnapshotDelta(w); err != nil {
		return err
	}
	s.c.MarkCheckpointedDelta()
	return nil
}

// CheckpointSeq returns the merged corpus's checkpoint chain position
// (see Collector.CheckpointSeq).
func (s *Store) CheckpointSeq() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.c.CheckpointSeq()
}

// Detach returns the merged Collector and resets the store to empty. It
// is how a finished ingest run hands the corpus to the (single-threaded)
// analysis layer without copying: after Detach the caller owns the
// Collector exclusively.
func (s *Store) Detach() *Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.c
	s.c = New()
	s.merges = 0
	return c
}
