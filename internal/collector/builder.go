package collector

import (
	"fmt"

	"hitlist6/internal/addr"
)

// SpanWindow is one per-/64 sighting window handed to Builder.AddIID —
// the builder-side mirror of what IIDView.P64s iterates.
type SpanWindow struct {
	P64         addr.Prefix64
	First, Last int64
}

// Builder reconstructs a Collector from a canonical-order record stream
// — the tiered corpus restore path (internal/pager), where the records
// arrive as sorted chunks off a snapshot file rather than as replayed
// observations.
//
// The builder promotes every IID: singletons (whose live representation
// is just a table slot pointing at the address record) come back as
// promoted entries carrying the same aggregate. That costs one 36-byte
// record per singleton but is observationally invisible — the canonical
// encoding, Checksum, every IIDView accessor and the EUI-64 iterators
// (which filter on span tracking, not promotion) all produce identical
// results, which is what lets a restore run straight off canonical
// bytes without re-deriving which IIDs were singletons.
//
// Records must arrive in canonical order: AddAddr strictly ascending by
// address, AddIID strictly ascending by IID with spans strictly
// ascending by /64. Finish validates the cross-record invariants.
type Builder struct {
	c        *Collector
	haveAddr bool
	lastAddr addr.Addr
	haveIID  bool
	lastIID  addr.IID
	addrSum  uint64
	iidSum   uint64
}

// NewBuilder returns a builder over a fresh collector.
func NewBuilder() *Builder { return &Builder{c: New()} }

// AddAddr appends one address record. Keys must be strictly ascending.
func (b *Builder) AddAddr(a addr.Addr, rec AddrRecord) error {
	if b.haveAddr && !b.lastAddr.Less(a) {
		return fmt.Errorf("collector: builder: address %v not ascending", a)
	}
	if rec.Count == 0 {
		return fmt.Errorf("collector: builder: address %v has zero count", a)
	}
	if rec.First > rec.Last {
		return fmt.Errorf("collector: builder: address %v window inverted", a)
	}
	b.haveAddr, b.lastAddr = true, a
	_, slot, ok := b.c.findAddr(a)
	if ok {
		return fmt.Errorf("collector: builder: duplicate address %v", a)
	}
	_, e := b.c.insertAddr(a, slot)
	e.rec = rec
	b.addrSum += uint64(rec.Count)
	return nil
}

// AddIID appends one IID record with its per-/64 spans (nil for an
// untracked IID). IIDs must be strictly ascending, spans strictly
// ascending by /64.
func (b *Builder) AddIID(iid addr.IID, first, last int64, count uint32, spans []SpanWindow) error {
	if b.haveIID && iid <= b.lastIID {
		return fmt.Errorf("collector: builder: IID %016x not ascending", uint64(iid))
	}
	if count == 0 {
		return fmt.Errorf("collector: builder: IID %016x has zero count", uint64(iid))
	}
	if first > last {
		return fmt.Errorf("collector: builder: IID %016x window inverted", uint64(iid))
	}
	b.haveIID, b.lastIID = true, iid
	_, slot, ok := b.c.findIID(iid)
	if ok {
		return fmt.Errorf("collector: builder: duplicate IID %016x", uint64(iid))
	}
	ri, e := b.c.allocPromoted(iid, first, last, count)
	for i, w := range spans {
		if i > 0 && uint64(w.P64) <= uint64(spans[i-1].P64) {
			return fmt.Errorf("collector: builder: IID %016x spans not ascending", uint64(iid))
		}
		if w.First > w.Last {
			return fmt.Errorf("collector: builder: IID %016x span %v window inverted", uint64(iid), w.P64)
		}
		si := b.c.spans.alloc()
		n := b.c.spans.at(si)
		n.p64, n.first, n.last, n.next = w.P64, w.First, w.Last, e.spans
		e.spans = si
		e.p64n++
	}
	b.c.setIIDSlot(slot, ri|promotedTag, iid)
	b.iidSum += uint64(count)
	return nil
}

// Finish validates the cross-record invariants the per-record checks
// cannot see and returns the collector. total is the stream's declared
// observation count; it must equal both the address and the IID count
// sums, and every address's IID must have been added — anything else
// means the canonical stream was damaged or truncated in a way the
// per-chunk CRCs could not catch.
func (b *Builder) Finish(total uint64) (*Collector, error) {
	c := b.c
	b.c = nil // the builder is spent; further Adds would corrupt c
	if c == nil {
		return nil, fmt.Errorf("collector: builder: Finish called twice")
	}
	if b.addrSum != total {
		return nil, fmt.Errorf("collector: builder: address counts sum to %d, stream declares %d", b.addrSum, total)
	}
	if b.iidSum != total {
		return nil, fmt.Errorf("collector: builder: IID counts sum to %d, stream declares %d", b.iidSum, total)
	}
	for i := uint32(0); i < c.addrRecs.n; i++ {
		key := c.addrRecs.at(i).key
		if _, _, ok := c.findIID(key.IID()); !ok {
			return nil, fmt.Errorf("collector: builder: address %v has no IID record", key)
		}
	}
	c.total = total
	return c, nil
}
