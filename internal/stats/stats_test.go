package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestShannonEntropyUniform(t *testing.T) {
	// A uniform distribution over k symbols has entropy log2(k).
	for _, k := range []int{2, 4, 8, 16} {
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 7
		}
		got := ShannonEntropy(counts)
		want := math.Log2(float64(k))
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("uniform k=%d: got %v want %v", k, got, want)
		}
	}
}

func TestShannonEntropyDegenerate(t *testing.T) {
	if got := ShannonEntropy(nil); got != 0 {
		t.Errorf("nil counts: got %v want 0", got)
	}
	if got := ShannonEntropy([]int{5}); got != 0 {
		t.Errorf("single symbol: got %v want 0", got)
	}
	if got := ShannonEntropy([]int{0, 0, 9, 0}); got != 0 {
		t.Errorf("one nonzero symbol: got %v want 0", got)
	}
	if got := ShannonEntropy([]int{1}); got != 0 {
		t.Errorf("single observation: got %v want 0", got)
	}
}

func TestShannonEntropyKnownValue(t *testing.T) {
	// Distribution {3/4, 1/4}: H = 0.75*log2(4/3) + 0.25*log2(4) ≈ 0.811278.
	got := ShannonEntropy([]int{3, 1})
	want := 0.75*math.Log2(4.0/3.0) + 0.25*2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestShannonEntropyLargeCounts(t *testing.T) {
	// Counts beyond the log2 lookup table must take the math.Log2 path and
	// agree with the analytic value.
	got := ShannonEntropy([]int{1000, 1000})
	if !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("got %v want 1.0", got)
	}
}

func TestNormalizedEntropyBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, 16)
		for _, r := range raw {
			counts[int(r)%16]++
		}
		v := NormalizedEntropy(counts, 16)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedEntropyAlphabetGuard(t *testing.T) {
	if got := NormalizedEntropy([]int{1, 1}, 1); got != 0 {
		t.Errorf("alphabet=1: got %v want 0", got)
	}
	if got := NormalizedEntropy([]int{1, 1}, 0); got != 0 {
		t.Errorf("alphabet=0: got %v want 0", got)
	}
}

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution([]float64{5, 1, 3, 2, 4})
	if d.N() != 5 {
		t.Fatalf("N: got %d want 5", d.N())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("min/max: got %v/%v want 1/5", d.Min(), d.Max())
	}
	if !almostEqual(d.Mean(), 3, 1e-12) {
		t.Errorf("mean: got %v want 3", d.Mean())
	}
	if !almostEqual(d.Median(), 3, 1e-12) {
		t.Errorf("median: got %v want 3", d.Median())
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution(nil)
	if d.N() != 0 || d.Min() != 0 || d.Max() != 0 || d.Mean() != 0 {
		t.Errorf("empty distribution should return zeros")
	}
	if d.CDF(10) != 0 || d.CCDF(10) != 1 {
		t.Errorf("empty CDF/CCDF: got %v/%v", d.CDF(10), d.CCDF(10))
	}
	if d.CDFSeries(5) != nil {
		t.Errorf("empty CDFSeries should be nil")
	}
}

func TestDistributionCDFInclusive(t *testing.T) {
	d := NewDistribution([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.9, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := d.CDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("CDF(%v): got %v want %v", c.x, got, c.want)
		}
	}
}

func TestDistributionCDFMonotonic(t *testing.T) {
	f := func(samples []float64, probes []float64) bool {
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
		}
		d := NewDistribution(samples)
		prev := -1.0
		// Probe in sorted order and check monotonicity.
		dd := NewDistribution(probes)
		for _, p := range dd.sorted {
			if math.IsNaN(p) {
				continue
			}
			v := d.CDF(p)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	d := NewDistribution([]float64{10, 20, 30, 40, 50})
	if got := d.Quantile(0); got != 10 {
		t.Errorf("q0: got %v", got)
	}
	if got := d.Quantile(1); got != 50 {
		t.Errorf("q1: got %v", got)
	}
	if got := d.Quantile(0.5); got != 30 {
		t.Errorf("q0.5: got %v", got)
	}
	if got := d.Quantile(0.25); got != 20 {
		t.Errorf("q0.25: got %v", got)
	}
	// Interpolated quantile.
	if got := d.Quantile(0.1); !almostEqual(got, 14, 1e-9) {
		t.Errorf("q0.1: got %v want 14", got)
	}
}

func TestCDFSeriesShape(t *testing.T) {
	d := NewDistribution([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := d.CDFSeries(11)
	if len(pts) != 11 {
		t.Fatalf("len: got %d want 11", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 9 {
		t.Errorf("x range: got [%v, %v]", pts[0].X, pts[len(pts)-1].X)
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("final y: got %v want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("series not monotonic at %d", i)
		}
	}
}

func TestCDFSeriesDegenerate(t *testing.T) {
	d := NewDistribution([]float64{7, 7, 7})
	pts := d.CDFSeries(4)
	for _, p := range pts {
		if p.X != 7 || p.Y != 1 {
			t.Errorf("degenerate point: %+v", p)
		}
	}
}

func TestLinearHistogram(t *testing.T) {
	h, err := NewLinearHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, 10} {
		h.Add(x)
	}
	h.Add(-1) // under
	h.Add(11) // over
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over: got %d/%d want 1/1", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("total: got %d want 6", h.Total())
	}
	want := []int{2, 2, 1, 0, 1} // 0,1.9 | 2, (nothing in [4,6) except 5) ...
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10]: 0,1.9 -> bin0; 2 -> bin1; 5 -> bin2; 9.99,10 -> bin4
	want = []int{2, 1, 1, 0, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d: got %d want %d (%v)", i, c, want[i], h.Counts)
		}
	}
}

func TestLinearHistogramErrors(t *testing.T) {
	if _, err := NewLinearHistogram(0, 10, 0); err == nil {
		t.Error("expected error for 0 bins")
	}
	if _, err := NewLinearHistogram(10, 10, 3); err == nil {
		t.Error("expected error for hi == lo")
	}
	if _, err := NewLinearHistogram(10, 0, 3); err == nil {
		t.Error("expected error for hi < lo")
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(1, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Bins should be [1,10) [10,100) [100,1000].
	for _, x := range []float64{1, 5, 10, 99, 100, 1000} {
		h.Add(x)
	}
	want := []int{2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d: got %d want %d (%v)", i, c, want[i], h.Counts)
		}
	}
}

func TestLogHistogramErrors(t *testing.T) {
	if _, err := NewLogHistogram(0, 10, 3); err == nil {
		t.Error("expected error for lo == 0")
	}
	if _, err := NewLogHistogram(5, 5, 3); err == nil {
		t.Error("expected error for hi == lo")
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewLinearHistogram(0, 1, 2)
	fr := h.Fractions()
	if fr[0] != 0 || fr[1] != 0 {
		t.Errorf("empty fractions: %v", fr)
	}
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.8)
	fr = h.Fractions()
	if !almostEqual(fr[0], 2.0/3, 1e-12) || !almostEqual(fr[1], 1.0/3, 1e-12) {
		t.Errorf("fractions: %v", fr)
	}
}

func TestHistogramAddProperty(t *testing.T) {
	// Every in-range sample lands in exactly one bin.
	h, _ := NewLinearHistogram(0, 1, 7)
	f := func(vals []float64) bool {
		inRange := 0
		for _, v := range vals {
			v = math.Abs(math.Mod(v, 1.0))
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			inRange++
		}
		return h.Total() >= inRange-h.Under-h.Over
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestComma(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		7:          "7",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		7914066999: "7,914,066,999",
		-42:        "-42",
		-1234:      "-1,234",
		21409629:   "21,409,629",
		11613494:   "11,613,494",
		171611786:  "171,611,786",
		14943429:   "14,943,429",
	}
	for in, want := range cases {
		if got := Comma(in); got != want {
			t.Errorf("Comma(%d): got %q want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.5, 1); got != "50.0%" {
		t.Errorf("got %q", got)
	}
	if got := Pct(0.034, 1); got != "3.4%" {
		t.Errorf("got %q", got)
	}
	if got := Pct(1, 0); got != "100%" {
		t.Errorf("got %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "count")
	tb.AddRow("alpha", "10")
	tb.AddRowf("beta", 20)
	out := tb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"Demo", "name", "alpha", "beta", "20"} {
		if !contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")         // short row: remaining cells empty
	tb.AddRow("1", "2", "3", "4") // long row: extra cell dropped
	out := tb.String()
	if contains(out, "4") {
		t.Errorf("extra cell should be dropped:\n%s", out)
	}
}

func TestAsciiCDF(t *testing.T) {
	d := NewDistribution([]float64{0.1, 0.2, 0.5, 0.9})
	out := AsciiCDF("plot", map[string][]CDFPoint{"s": d.CDFSeries(16)}, 20, 6)
	if !contains(out, "plot") || !contains(out, "s") {
		t.Errorf("missing title or legend:\n%s", out)
	}
}

func TestAsciiCDFEmpty(t *testing.T) {
	out := AsciiCDF("empty", nil, 10, 4)
	if !contains(out, "empty") {
		t.Errorf("missing title:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
