// Package stats provides the numerical building blocks shared by every
// analysis in the repository: Shannon entropy, empirical distribution
// functions (CDF/CCDF), quantiles, histograms with linear and logarithmic
// binning, and small formatting helpers used when rendering the paper's
// tables and figures as text.
//
// All functions are deterministic and allocation-conscious; the hot paths
// (entropy over nibbles, distribution construction) are exercised by the
// repository's benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// log2Table caches log2(k) for small k so that entropy over a 16-symbol
// alphabet never calls math.Log2 at runtime. Index 0 is unused.
var log2Table [65]float64

func init() {
	for i := 1; i < len(log2Table); i++ {
		log2Table[i] = math.Log2(float64(i))
	}
}

// ShannonEntropy returns the Shannon entropy, in bits, of the empirical
// symbol distribution described by counts. Zero counts contribute nothing.
// The result is 0 for an empty or single-symbol distribution.
func ShannonEntropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total <= 1 {
		return 0
	}
	// H = log2(N) - (1/N) * sum(c * log2(c))
	var acc float64
	for _, c := range counts {
		switch {
		case c <= 0:
			// no contribution
		case c < len(log2Table):
			acc += float64(c) * log2Table[c]
		default:
			acc += float64(c) * math.Log2(float64(c))
		}
	}
	n := float64(total)
	var logN float64
	if total < len(log2Table) {
		logN = log2Table[total]
	} else {
		logN = math.Log2(n)
	}
	h := logN - acc/n
	if h < 0 {
		return 0
	}
	return h
}

// NormalizedEntropy returns ShannonEntropy(counts) divided by the maximum
// entropy attainable with the given alphabet size, yielding a value in
// [0, 1]. alphabet must be >= 2.
func NormalizedEntropy(counts []int, alphabet int) float64 {
	if alphabet < 2 {
		return 0
	}
	h := ShannonEntropy(counts)
	var maxH float64
	if alphabet < len(log2Table) {
		maxH = log2Table[alphabet]
	} else {
		maxH = math.Log2(float64(alphabet))
	}
	v := h / maxH
	if v > 1 {
		return 1
	}
	return v
}

// Distribution is an empirical distribution over float64 samples. It is
// built once and then queried for CDF/CCDF values, quantiles and summary
// statistics. The zero value is an empty distribution.
type Distribution struct {
	sorted []float64
	sum    float64
}

// NewDistribution copies and sorts samples into a queryable Distribution.
func NewDistribution(samples []float64) *Distribution {
	cp := make([]float64, len(samples))
	copy(cp, samples)
	return TakeDistribution(cp)
}

// TakeDistribution builds a Distribution that takes ownership of samples,
// sorting them in place with no copy — the allocation-free form for
// callers that built the slice themselves (the analysis engine's fold
// partials). The caller must not use samples afterwards. The result is
// identical to NewDistribution over the same values: the sum accumulates
// in sorted order either way, so even the floating-point rounding
// matches.
func TakeDistribution(samples []float64) *Distribution {
	d := &Distribution{sorted: samples}
	sort.Float64s(d.sorted)
	for _, v := range d.sorted {
		d.sum += v
	}
	return d
}

// N returns the number of samples.
func (d *Distribution) N() int { return len(d.sorted) }

// Min returns the smallest sample, or 0 for an empty distribution.
func (d *Distribution) Min() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest sample, or 0 for an empty distribution.
func (d *Distribution) Max() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Mean returns the arithmetic mean, or 0 for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sum / float64(len(d.sorted))
}

// CDF returns P(X <= x).
func (d *Distribution) CDF(x float64) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(d.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// over equal values to make the comparison inclusive.
	for i < len(d.sorted) && d.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(d.sorted))
}

// CCDF returns P(X > x) = 1 - CDF(x).
func (d *Distribution) CCDF(x float64) float64 { return 1 - d.CDF(x) }

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank
// interpolation. Quantile(0.5) is the median.
func (d *Distribution) Quantile(q float64) float64 {
	n := len(d.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return d.sorted[0]
	}
	if q >= 1 {
		return d.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.sorted[lo]
	}
	frac := pos - float64(lo)
	return d.sorted[lo]*(1-frac) + d.sorted[hi]*frac
}

// Median is shorthand for Quantile(0.5).
func (d *Distribution) Median() float64 { return d.Quantile(0.5) }

// CDFPoint is one (x, y) sample of an empirical distribution function.
type CDFPoint struct {
	X float64
	Y float64
}

// CDFSeries evaluates the CDF at n evenly spaced points spanning
// [Min, Max]. It returns nil for an empty distribution.
func (d *Distribution) CDFSeries(n int) []CDFPoint {
	if len(d.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := d.Min(), d.Max()
	pts := make([]CDFPoint, n)
	if n == 1 || hi == lo {
		for i := range pts {
			pts[i] = CDFPoint{X: hi, Y: 1}
		}
		return pts
	}
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		pts[i] = CDFPoint{X: x, Y: d.CDF(x)}
	}
	return pts
}

// CDFAt evaluates the CDF at each of the provided x values.
func (d *Distribution) CDFAt(xs []float64) []CDFPoint {
	pts := make([]CDFPoint, len(xs))
	for i, x := range xs {
		pts[i] = CDFPoint{X: x, Y: d.CDF(x)}
	}
	return pts
}

// CCDFAt evaluates the CCDF at each of the provided x values.
func (d *Distribution) CCDFAt(xs []float64) []CDFPoint {
	pts := make([]CDFPoint, len(xs))
	for i, x := range xs {
		pts[i] = CDFPoint{X: x, Y: d.CCDF(x)}
	}
	return pts
}

// Histogram is a fixed-bin histogram over float64 samples.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bin i covers [Edges[i], Edges[i+1]).
	// The final bin is closed on both ends.
	Edges  []float64
	Counts []int
	// Under and Over count samples falling outside [Edges[0], Edges[len-1]].
	Under, Over int
}

// NewLinearHistogram creates a histogram with bins evenly spaced across
// [lo, hi]. bins must be >= 1 and hi > lo.
func NewLinearHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins must be >= 1, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: need hi > lo, got [%v, %v]", lo, hi)
	}
	h := &Histogram{Edges: make([]float64, bins+1), Counts: make([]int, bins)}
	step := (hi - lo) / float64(bins)
	for i := 0; i <= bins; i++ {
		h.Edges[i] = lo + float64(i)*step
	}
	h.Edges[bins] = hi // avoid accumulation error at the top edge
	return h, nil
}

// NewLogHistogram creates a histogram with logarithmically spaced bins
// across [lo, hi]. Both bounds must be positive.
func NewLogHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: bins must be >= 1, got %d", bins)
	}
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: need 0 < lo < hi, got [%v, %v]", lo, hi)
	}
	h := &Histogram{Edges: make([]float64, bins+1), Counts: make([]int, bins)}
	llo, lhi := math.Log(lo), math.Log(hi)
	step := (lhi - llo) / float64(bins)
	for i := 0; i <= bins; i++ {
		h.Edges[i] = math.Exp(llo + float64(i)*step)
	}
	h.Edges[0], h.Edges[bins] = lo, hi
	return h, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	if x < h.Edges[0] {
		h.Under++
		return
	}
	if x > h.Edges[n] {
		h.Over++
		return
	}
	// Binary search for the bin.
	i := sort.SearchFloat64s(h.Edges, x)
	// Edges[i] >= x. Bin index is i-1 except when x is exactly an edge.
	if i < len(h.Edges) && h.Edges[i] == x {
		if i == n { // top edge belongs to the last bin
			i = n - 1
		}
	} else {
		i--
	}
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns each bin count divided by the in-range total. For an
// empty histogram it returns all zeros.
func (h *Histogram) Fractions() []float64 {
	t := h.Total()
	out := make([]float64, len(h.Counts))
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}
