package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for the experiment harness output. It
// intentionally mirrors the look of the paper's tables so EXPERIMENTS.md can
// paste harness output directly.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row built with fmt.Sprint applied to each value.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := widths[i] - len(c); pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Comma formats an integer with thousands separators (1234567 ->
// "1,234,567"), matching how the paper reports counts.
func Comma(n int64) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		if neg {
			return "-" + s
		}
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// Pct formats a fraction as a percentage with the given number of decimals.
func Pct(frac float64, decimals int) string {
	return fmt.Sprintf("%.*f%%", decimals, frac*100)
}

// AsciiCDF renders an empirical distribution as a small ASCII plot, used by
// cmd/v6study to echo the paper's figures in terminal output. width and
// height control the plot raster.
func AsciiCDF(title string, series map[string][]CDFPoint, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var minX, maxX float64
	first := true
	for _, pts := range series {
		for _, p := range pts {
			if first {
				minX, maxX = p.X, p.X
				first = false
				continue
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
		}
	}
	if first || maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	// Deterministic ordering for reproducible output.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var legend strings.Builder
	for idx, name := range names {
		mark := marks[idx%len(marks)]
		for _, p := range series[name] {
			x := int(float64(width-1) * (p.X - minX) / (maxX - minX))
			y := height - 1 - int(float64(height-1)*clamp01(p.Y))
			if x >= 0 && x < width && y >= 0 && y < height {
				grid[y][x] = mark
			}
		}
		fmt.Fprintf(&legend, "  %c %s\n", mark, name)
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, row := range grid {
		yVal := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "       %-*.3g%*.3g\n", width/2, minX, width-width/2, maxX)
	b.WriteString(legend.String())
	return b.String()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
