package scan

import (
	"testing"
)

func collectShard(t *testing.T, s *Shard) []uint64 {
	t.Helper()
	var out []uint64
	for {
		v, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestShardsPartitionDomain(t *testing.T) {
	for _, tc := range []struct {
		n      uint64
		shards uint64
	}{
		{100, 1}, {100, 3}, {1000, 7}, {4096, 4}, {17, 16},
	} {
		pm, err := NewPermutation(tc.n, 0xabc)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]int, tc.n)
		for i := uint64(0); i < tc.shards; i++ {
			sh, err := pm.Shard(i, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range collectShard(t, sh) {
				if v >= tc.n {
					t.Fatalf("n=%d shards=%d: out of range %d", tc.n, tc.shards, v)
				}
				seen[v]++
			}
		}
		if uint64(len(seen)) != tc.n {
			t.Fatalf("n=%d shards=%d: covered %d values", tc.n, tc.shards, len(seen))
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d shards=%d: value %d visited %d times", tc.n, tc.shards, v, c)
			}
		}
	}
}

func TestShardMatchesFullIteration(t *testing.T) {
	// A single shard (0 of 1) must reproduce the full permutation order.
	pm, err := NewPermutation(500, 9)
	if err != nil {
		t.Fatal(err)
	}
	var full []uint64
	for {
		v, ok := pm.Next()
		if !ok {
			break
		}
		full = append(full, v)
	}
	pm.Reset()
	sh, err := pm.Shard(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := collectShard(t, sh)
	if len(got) != len(full) {
		t.Fatalf("lengths: %d vs %d", len(got), len(full))
	}
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

func TestShardInterleaving(t *testing.T) {
	// Shard i's k-th cycle position is the (i + k*n)-th of the full cycle;
	// verify against the in-range subsequence.
	pm, err := NewPermutation(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh0, err := pm.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sh1, err := pm.Shard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := collectShard(t, sh0)
	b := collectShard(t, sh1)
	if len(a)+len(b) != 64 {
		t.Fatalf("coverage: %d + %d", len(a), len(b))
	}
}

func TestShardErrors(t *testing.T) {
	pm, err := NewPermutation(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Shard(0, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := pm.Shard(5, 5); err == nil {
		t.Error("i >= n should fail")
	}
}

func TestShardSingletonDomain(t *testing.T) {
	pm, err := NewPermutation(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := pm.Shard(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectShard(t, s0); len(got) != 1 || got[0] != 0 {
		t.Errorf("shard 0: %v", got)
	}
	s1, err := pm.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectShard(t, s1); len(got) != 0 {
		t.Errorf("shard 1 of singleton: %v", got)
	}
}
