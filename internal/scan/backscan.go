package scan

import (
	"math/rand"
	"sort"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

// BackscanConfig mirrors the paper's §3 backscanning methodology: record
// NTP clients at a subset of vantage servers in 10-minute intervals, then
// probe each client address once per interval plus one random address in
// the client's /64 (the alias canary), all over ICMPv6.
type BackscanConfig struct {
	// Vantages are the collector server IDs participating (paper: 5 of 27).
	Vantages []int
	// Window is when the campaign runs.
	Start time.Time
	End   time.Time
	// Interval batches clients before probing (paper: 10 minutes).
	Interval time.Duration
	// Seed drives random-IID target generation.
	Seed int64
}

// DefaultBackscanConfig returns the paper's parameters over the given
// window: 5 vantages, 10-minute batches.
func DefaultBackscanConfig(start, end time.Time, seed int64) BackscanConfig {
	return BackscanConfig{
		Vantages: []int{0, 6, 8, 12, 20},
		Start:    start,
		End:      end,
		Interval: 10 * time.Minute,
		Seed:     seed,
	}
}

// BackscanOutcome is the probe pair result for one client in one interval.
type BackscanOutcome struct {
	Client          addr.Addr
	ClientResponded bool
	ClientAliased   bool // client probe answered by an aliased prefix
	Random          addr.Addr
	RandomResponded bool
	At              time.Time
}

// BackscanStats aggregates a campaign (§4.2's headline numbers).
type BackscanStats struct {
	ClientsProbed   int
	ClientResponses int
	RandomProbes    int
	RandomResponses int
	// AliasedPrefixes are /64s inferred aliased because a random IID
	// answered.
	AliasedPrefixes map[addr.Prefix64]struct{}
	// Outcomes holds every probe pair.
	Outcomes []BackscanOutcome
}

// ClientResponseRate returns the fraction of probed clients that answered
// (paper: about two thirds).
func (s *BackscanStats) ClientResponseRate() float64 {
	if s.ClientsProbed == 0 {
		return 0
	}
	return float64(s.ClientResponses) / float64(s.ClientsProbed)
}

// RandomResponseRate returns the fraction of random-IID probes answered
// (paper: 3.5%, almost all aliases).
func (s *BackscanStats) RandomResponseRate() float64 {
	if s.RandomProbes == 0 {
		return 0
	}
	return float64(s.RandomResponses) / float64(s.RandomProbes)
}

// Backscan replays the world's NTP queries through the configured window,
// batches clients per interval at the participating vantages, and probes
// back. It returns the campaign aggregate.
//
// Within an interval no address is probed more than once, matching the
// paper's rate-limiting ("no IP was probed more than once during a 10
// minute interval").
func Backscan(w *simnet.World, pool PoolSelector, cfg BackscanConfig) *BackscanStats {
	stats := &BackscanStats{AliasedPrefixes: make(map[addr.Prefix64]struct{})}
	rng := rand.New(rand.NewSource(cfg.Seed))
	participating := make(map[int]bool, len(cfg.Vantages))
	for _, v := range cfg.Vantages {
		participating[v] = true
	}

	// Batch clients into intervals.
	type batchKey int64
	batches := make(map[batchKey]map[addr.Addr]time.Time)
	w.GenerateQueries(func(q simnet.Query) {
		if q.Time.Before(cfg.Start) || !q.Time.Before(cfg.End) {
			return
		}
		if pool != nil {
			v := pool.Select(w.Geo.Country(q.Addr))
			if !participating[v] {
				return
			}
		}
		k := batchKey(q.Time.Sub(cfg.Start) / cfg.Interval)
		b, ok := batches[k]
		if !ok {
			b = make(map[addr.Addr]time.Time)
			batches[k] = b
		}
		if _, seen := b[q.Addr]; !seen {
			b[q.Addr] = q.Time
		}
	})

	// Probe each batch at its interval end, in batch order.
	maxK := batchKey(cfg.End.Sub(cfg.Start) / cfg.Interval)
	for k := batchKey(0); k <= maxK; k++ {
		b, ok := batches[k]
		if !ok {
			continue
		}
		probeAt := cfg.Start.Add(time.Duration(k+1) * cfg.Interval)
		// Probe in canonical address order: the batch is a map, and
		// pairing clients with rng draws in map iteration order would
		// make the campaign nondeterministic across runs of one seed.
		clients := make([]addr.Addr, 0, len(b))
		for client := range b {
			clients = append(clients, client)
		}
		sort.Slice(clients, func(i, j int) bool { return clients[i].Less(clients[j]) })
		for _, client := range clients {
			res := w.Probe(client, probeAt)
			outcome := BackscanOutcome{
				Client:          client,
				ClientResponded: res.Responded,
				ClientAliased:   res.FromAlias,
				At:              probeAt,
			}
			stats.ClientsProbed++
			if res.Responded {
				stats.ClientResponses++
			}
			// The alias canary: a random IID in the same /64.
			randAddr := addr.FromParts(uint64(client.P64()), rng.Uint64())
			if randAddr != client {
				rres := w.Probe(randAddr, probeAt)
				outcome.Random = randAddr
				outcome.RandomResponded = rres.Responded
				stats.RandomProbes++
				if rres.Responded {
					stats.RandomResponses++
					stats.AliasedPrefixes[randAddr.P64()] = struct{}{}
				}
			}
			stats.Outcomes = append(stats.Outcomes, outcome)
		}
	}
	return stats
}

// PoolSelector abstracts the NTP pool's geo selection so scan does not
// import ntppool (which imports collector).
type PoolSelector interface {
	// Select returns the vantage server ID for a client country.
	Select(country string) int
}

// DetectAlias probes n random IIDs within a /64 and infers aliasing when
// at least threshold respond — the standard alias-resolution pre-filter
// active campaigns run (§2.1, §4.2).
func DetectAlias(w *simnet.World, p addr.Prefix64, t time.Time, n, threshold int, seed int64) bool {
	if n <= 0 {
		return false
	}
	if threshold <= 0 {
		threshold = n
	}
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	for i := 0; i < n; i++ {
		probe := addr.FromParts(uint64(p), rng.Uint64())
		if w.Probe(probe, t).Responded {
			hits++
			if hits >= threshold {
				return true
			}
		}
	}
	return false
}
