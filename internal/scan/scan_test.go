package scan

import (
	"testing"
	"testing/quick"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

func TestIsPrimeKnownValues(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 11, 13, 101, 7919, 104729, 2147483647, 1000000007}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 15, 100, 7917, 104730, 2147483647 * 3}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
	// Strong pseudoprime to base 2: must be rejected by the full base set.
	if isPrime(3215031751) {
		t.Error("3215031751 is composite")
	}
}

func TestNextSafePrime(t *testing.T) {
	p, err := nextSafePrime(10)
	if err != nil {
		t.Fatal(err)
	}
	if p != 11 { // 11 = 2*5+1, both prime
		t.Errorf("nextSafePrime(10): got %d want 11", p)
	}
	p, err = nextSafePrime(100)
	if err != nil {
		t.Fatal(err)
	}
	if p != 107 {
		t.Errorf("nextSafePrime(100): got %d want 107", p)
	}
	if !isPrime(p) || !isPrime((p-1)/2) {
		t.Errorf("%d is not a safe prime", p)
	}
}

func TestPermutationVisitsAllExactlyOnce(t *testing.T) {
	for _, n := range []uint64{1, 2, 5, 16, 100, 1000, 4097} {
		pm, err := NewPermutation(n, 0xfeed)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := pm.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: out of range value %d", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: value %d repeated", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: visited %d values", n, len(seen))
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	order := func(seed uint64) []uint64 {
		pm, err := NewPermutation(64, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for {
			v, ok := pm.Next()
			if !ok {
				break
			}
			out = append(out, v)
		}
		return out
	}
	a, b := order(1), order(99)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical orders")
	}
}

func TestPermutationReset(t *testing.T) {
	pm, err := NewPermutation(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	var first []uint64
	for {
		v, ok := pm.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	pm.Reset()
	for i := 0; ; i++ {
		v, ok := pm.Next()
		if !ok {
			break
		}
		if v != first[i] {
			t.Fatalf("reset replay diverged at %d", i)
		}
	}
}

func TestPermutationErrors(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("n=0 should fail")
	}
}

// mulmodSlow is an overflow-safe double-and-add reference for mulmod.
// addMod computes (x+y) mod m without overflow for x, y < m.
func addMod(x, y, m uint64) uint64 {
	if x >= m-y {
		return x - (m - y)
	}
	return x + y
}

func mulmodSlow(a, b, m uint64) uint64 {
	var r uint64
	a %= m
	b %= m
	for b > 0 {
		if b&1 == 1 {
			r = addMod(r, a, m)
		}
		a = addMod(a, a, m)
		b >>= 1
	}
	return r
}

func TestMulmodMatchesAdditiveLadder(t *testing.T) {
	f := func(a, b uint64, mRaw uint64) bool {
		m := mRaw
		if m < 2 {
			m = 2
		}
		return mulmod(a, b, m) == mulmodSlow(a, b, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func tinyWorld(t testing.TB, seed int64) *simnet.World {
	t.Helper()
	cfg := simnet.DefaultConfig(seed, 0.03)
	cfg.Days = 20
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestZMap6ScanRouters(t *testing.T) {
	w := tinyWorld(t, 31)
	z := &ZMap6{World: w, Seed: 5}
	tm := w.Origin.Add(time.Hour)
	routers := w.Routers()
	res, err := z.Scan(routers, tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(routers) {
		t.Fatalf("results: %d want %d", len(res), len(routers))
	}
	resp := Responsive(res)
	if len(resp) != len(routers) {
		t.Errorf("responsive routers: %d/%d", len(resp), len(routers))
	}
	if z.Sent != uint64(len(routers)) || z.Received != uint64(len(routers)) {
		t.Errorf("stats: sent=%d received=%d", z.Sent, z.Received)
	}
}

func TestZMap6EmptyTargets(t *testing.T) {
	w := tinyWorld(t, 32)
	z := &ZMap6{World: w}
	res, err := z.Scan(nil, w.Origin)
	if err != nil || res != nil {
		t.Errorf("empty scan: %v, %v", res, err)
	}
}

func TestYarrpDiscoversInfrastructure(t *testing.T) {
	w := tinyWorld(t, 33)
	y := &Yarrp{World: w, SourceASN: 21928, Seed: 9}
	tm := w.Origin.Add(time.Hour)

	// Trace to the ::1 of some customer /48s (CAIDA style).
	var targets []addr.Addr
	for _, d := range w.Devices() {
		if len(targets) >= 50 {
			break
		}
		targets = append(targets, d.Prefix64At(tm).Addr().WithIID(1))
	}
	traces, err := y.Trace(targets, tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != len(targets) {
		t.Fatalf("traces: %d", len(traces))
	}
	disc := DiscoveredAddrs(traces)
	if len(disc) == 0 {
		t.Fatal("no addresses discovered")
	}
	// Discovered hop addresses must be dominated by low-entropy router
	// IIDs (Figure 1's CAIDA curve).
	low := 0
	for a := range disc {
		if a.IID().EntropyClass() == addr.LowEntropy {
			low++
		}
	}
	if low*2 < len(disc) {
		t.Errorf("only %d/%d discovered addresses are low entropy", low, len(disc))
	}
	if y.Traces != uint64(len(targets)) {
		t.Errorf("trace counter: %d", y.Traces)
	}
}

func TestDetectAlias(t *testing.T) {
	w := tinyWorld(t, 34)
	tm := w.Origin.Add(time.Hour)
	aliased := w.AliasedPrefixes()
	if len(aliased) == 0 {
		t.Fatal("no aliased prefixes")
	}
	if !DetectAlias(w, aliased[0], tm, 16, 16, 1) {
		t.Error("aliased prefix not detected")
	}
	// A regular customer /64 must not be flagged.
	var normal addr.Prefix64
	for _, d := range w.Devices() {
		if !w.IsAliased(d.Prefix64At(tm)) {
			normal = d.Prefix64At(tm)
			break
		}
	}
	if DetectAlias(w, normal, tm, 16, 2, 1) {
		t.Error("normal prefix flagged aliased")
	}
	if DetectAlias(w, aliased[0], tm, 0, 0, 1) {
		t.Error("n=0 should never detect")
	}
}

type fixedSelector struct{ id int }

func (f fixedSelector) Select(string) int { return f.id }

func TestBackscan(t *testing.T) {
	w := tinyWorld(t, 35)
	start := w.Origin.Add(5 * 24 * time.Hour)
	end := start.Add(24 * time.Hour)
	cfg := DefaultBackscanConfig(start, end, 77)
	// Route every query to vantage 0 so the campaign sees all clients.
	stats := Backscan(w, fixedSelector{0}, cfg)

	if stats.ClientsProbed == 0 {
		t.Fatal("no clients probed")
	}
	rate := stats.ClientResponseRate()
	if rate <= 0.3 || rate >= 0.95 {
		t.Errorf("client response rate %.2f outside plausible band", rate)
	}
	rr := stats.RandomResponseRate()
	if rr < 0 || rr > 0.3 {
		t.Errorf("random response rate %.3f implausible", rr)
	}
	// Every inferred aliased prefix must be ground-truth aliased.
	for p := range stats.AliasedPrefixes {
		if !w.IsAliased(p) {
			t.Errorf("false alias inference for %s", p)
		}
	}
	// Random hits imply alias inference.
	if stats.RandomResponses != 0 && len(stats.AliasedPrefixes) == 0 {
		t.Error("random responses but no aliased prefixes recorded")
	}
}

// TestBackscanDeterministic pins the campaign's reproducibility: one
// seed must pair the same clients with the same random canaries on
// every run. The batches are maps, so an implementation that probes in
// map iteration order consumes the rng in a different order each run —
// the regression this guards against.
func TestBackscanDeterministic(t *testing.T) {
	w := tinyWorld(t, 35)
	start := w.Origin.Add(5 * 24 * time.Hour)
	end := start.Add(24 * time.Hour)
	cfg := DefaultBackscanConfig(start, end, 77)
	ref := Backscan(w, fixedSelector{0}, cfg)
	if len(ref.Outcomes) == 0 {
		t.Fatal("no outcomes; determinism check vacuous")
	}
	for run := 0; run < 3; run++ {
		got := Backscan(w, fixedSelector{0}, cfg)
		if len(got.Outcomes) != len(ref.Outcomes) {
			t.Fatalf("run %d: %d outcomes, want %d", run, len(got.Outcomes), len(ref.Outcomes))
		}
		for i, o := range got.Outcomes {
			if o != ref.Outcomes[i] {
				t.Fatalf("run %d: outcome %d differs: %+v vs %+v", run, i, o, ref.Outcomes[i])
			}
		}
	}
}

func TestBackscanVantageFiltering(t *testing.T) {
	w := tinyWorld(t, 36)
	start := w.Origin.Add(5 * 24 * time.Hour)
	end := start.Add(12 * time.Hour)
	cfg := DefaultBackscanConfig(start, end, 1)
	all := Backscan(w, fixedSelector{0}, cfg)  // vantage 0 participates
	none := Backscan(w, fixedSelector{1}, cfg) // vantage 1 does not... it does (in list)
	_ = none
	off := Backscan(w, fixedSelector{3}, cfg) // vantage 3 not in the list
	if all.ClientsProbed == 0 {
		t.Fatal("participating vantage saw nothing")
	}
	if off.ClientsProbed != 0 {
		t.Errorf("non-participating vantage probed %d clients", off.ClientsProbed)
	}
}
