// Package scan implements the active-measurement substrate: a ZMap6-style
// stateless ICMPv6 scanner with multiplicative-cyclic-group target
// permutation, a Yarrp-style stateless traceroute engine, the paper's
// backscanning methodology (§3, §4.2), and aliased-network detection.
//
// Both scanners probe through simnet.World.Probe/TraceRoute, the single
// choke point that keeps active and passive measurements consistent.
package scan

import (
	"fmt"
	"math/bits"
)

// Permutation iterates [0, n) in a pseudorandom order using ZMap's
// construction: the multiplicative cyclic group of integers modulo a safe
// prime p >= n+1. The iteration x -> x*g (mod p) visits every element of
// [1, p) exactly once when g is a generator; values above n are skipped.
// State is three words, so scans can be sharded and resumed — the property
// ZMap relies on for statelessness.
type Permutation struct {
	p, g  uint64 // safe prime modulus and group generator
	n     uint64 // iteration domain size
	first uint64 // starting element
	cur   uint64
	done  bool
}

// NewPermutation creates a permutation over [0, n) seeded by seed.
// n must be at least 1.
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 {
		return nil, fmt.Errorf("scan: empty permutation domain")
	}
	if n == 1 {
		// Degenerate: the group construction needs p >= 5.
		return &Permutation{p: 0, n: 1}, nil
	}
	p, err := nextSafePrime(n + 1)
	if err != nil {
		return nil, err
	}
	g, err := findGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	first := seed%(p-1) + 1 // in [1, p-1]
	return &Permutation{p: p, g: g, n: n, first: first, cur: first}, nil
}

// N returns the domain size.
func (pm *Permutation) N() uint64 { return pm.n }

// Next returns the next element of the permutation, and false when the
// full cycle has been visited.
func (pm *Permutation) Next() (uint64, bool) {
	if pm.done {
		return 0, false
	}
	if pm.p == 0 { // n == 1
		pm.done = true
		return 0, true
	}
	for {
		v := pm.cur
		pm.cur = mulmod(pm.cur, pm.g, pm.p)
		if pm.cur == pm.first {
			pm.done = true
		}
		if v-1 < pm.n { // group elements are [1, p); domain is [0, n)
			return v - 1, true
		}
		if pm.done {
			return 0, false
		}
	}
}

// Reset restarts the iteration from the beginning.
func (pm *Permutation) Reset() {
	pm.cur = pm.first
	pm.done = false
}

// Shard is one of n interleaved sub-iterations of a permutation: shard i
// visits the i-th, (i+n)-th, … elements of the cycle. This is ZMap's
// sharding scheme — independent probe machines split one scan without
// coordination, because x -> x*g^n (mod p) jumps n cycle steps at once.
type Shard struct {
	p, step uint64 // modulus and g^n
	n       uint64
	first   uint64
	cur     uint64
	done    bool
	single  bool // degenerate n==1 domain
	emitted uint64
	total   uint64 // cycle positions this shard owns
}

// Shard carves shard i of n from the permutation. The receiver is not
// modified. i must be in [0, n) and n >= 1.
func (pm *Permutation) Shard(i, n uint64) (*Shard, error) {
	if n == 0 || i >= n {
		return nil, fmt.Errorf("scan: invalid shard %d of %d", i, n)
	}
	if pm.p == 0 { // domain of size 1
		return &Shard{single: true, done: i != 0, n: pm.n}, nil
	}
	cycle := pm.p - 1 // cycle length
	total := cycle / n
	if i < cycle%n {
		total++
	}
	// Start at first * g^i, then step by g^n.
	start := mulmod(pm.first, powmod(pm.g, i, pm.p), pm.p)
	return &Shard{
		p:     pm.p,
		step:  powmod(pm.g, n, pm.p),
		n:     pm.n,
		first: start,
		cur:   start,
		total: total,
	}, nil
}

// Next returns the shard's next element; ok is false when exhausted.
func (s *Shard) Next() (uint64, bool) {
	if s.done {
		return 0, false
	}
	if s.single {
		s.done = true
		return 0, true
	}
	for s.emitted < s.total {
		v := s.cur
		s.cur = mulmod(s.cur, s.step, s.p)
		s.emitted++
		if v-1 < s.n {
			return v - 1, true
		}
	}
	s.done = true
	return 0, false
}

// mulmod computes a*b mod m without overflow using 128-bit arithmetic.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powmod computes a^e mod m.
func powmod(a, e, m uint64) uint64 {
	result := uint64(1)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, a, m)
		}
		a = mulmod(a, a, m)
		e >>= 1
	}
	return result
}

// millerRabinBases is a deterministic witness set for 64-bit integers.
var millerRabinBases = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// isPrime is a deterministic Miller–Rabin test valid for all uint64.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
witness:
	for _, a := range millerRabinBases {
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// nextSafePrime returns the smallest safe prime p >= lo (p and (p-1)/2
// both prime). Safe primes make generator testing trivial: g generates
// Z_p^* iff g^2 != 1 and g^q != 1 (mod p) where q = (p-1)/2.
func nextSafePrime(lo uint64) (uint64, error) {
	if lo < 5 {
		lo = 5
	}
	// Safe primes are ≡ 3 (mod 4); start at the first candidate >= lo.
	p := lo + (3-lo%4+4)%4
	for ; p >= lo; p += 4 { // wraps on overflow, caught below
		if p < lo {
			break
		}
		if isPrime(p) && isPrime((p-1)/2) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("scan: no safe prime found above %d", lo)
}

// findGenerator locates a generator of Z_p^* for a safe prime p, probing
// candidates derived from seed.
func findGenerator(p uint64, seed uint64) (uint64, error) {
	q := (p - 1) / 2
	for i := uint64(0); i < 4096; i++ {
		g := (seed+i*0x9e3779b9)%(p-3) + 2 // in [2, p-2]
		if powmod(g, 2, p) != 1 && powmod(g, q, p) != 1 {
			return g, nil
		}
	}
	return 0, fmt.Errorf("scan: no generator found for p=%d", p)
}
