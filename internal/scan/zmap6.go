package scan

import (
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

// PingResult is one ZMap6-style ICMPv6 echo outcome.
type PingResult struct {
	Target    addr.Addr
	Responded bool
	FromAlias bool
}

// ZMap6 is the stateless ICMPv6 echo scanner. Targets are visited in
// multiplicative-group permutation order, exactly as ZMap randomizes its
// probe order to spread load across networks.
type ZMap6 struct {
	World *simnet.World
	// Seed randomizes the probe permutation.
	Seed uint64
	// Stats accumulate across Scan calls.
	Sent, Received uint64
}

// Scan probes every target at time t and returns per-target results in
// permutation order.
func (z *ZMap6) Scan(targets []addr.Addr, t time.Time) ([]PingResult, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	pm, err := NewPermutation(uint64(len(targets)), z.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]PingResult, 0, len(targets))
	for {
		i, ok := pm.Next()
		if !ok {
			break
		}
		tgt := targets[i]
		res := z.World.Probe(tgt, t)
		z.Sent++
		if res.Responded {
			z.Received++
		}
		out = append(out, PingResult{Target: tgt, Responded: res.Responded, FromAlias: res.FromAlias})
	}
	return out, nil
}

// Responsive filters a result set down to the addresses that answered.
func Responsive(results []PingResult) []addr.Addr {
	var out []addr.Addr
	for _, r := range results {
		if r.Responded {
			out = append(out, r.Target)
		}
	}
	return out
}

// Yarrp is the stateless randomized traceroute engine. It traces to each
// target and records every responding intermediate hop — this is how
// active campaigns discover core infrastructure the paper's Figure 1 shows
// as near-zero-entropy addresses.
type Yarrp struct {
	World *simnet.World
	// SourceASN is the vantage's origin AS.
	SourceASN uint32
	// Seed randomizes the target permutation.
	Seed uint64
	// Traces counts completed traces.
	Traces uint64
}

// TraceResult is one Yarrp trace.
type TraceResult struct {
	Target addr.Addr
	Hops   []simnet.Hop
}

// Trace runs traces to every target at time t, in permutation order.
func (y *Yarrp) Trace(targets []addr.Addr, t time.Time) ([]TraceResult, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	pm, err := NewPermutation(uint64(len(targets)), y.Seed)
	if err != nil {
		return nil, err
	}
	out := make([]TraceResult, 0, len(targets))
	for {
		i, ok := pm.Next()
		if !ok {
			break
		}
		tgt := targets[i]
		hops := y.World.TraceRoute(y.SourceASN, tgt, t)
		y.Traces++
		out = append(out, TraceResult{Target: tgt, Hops: hops})
	}
	return out, nil
}

// DiscoveredAddrs returns the set of unique addresses (hops and responding
// destinations) a trace campaign learned.
func DiscoveredAddrs(traces []TraceResult) map[addr.Addr]struct{} {
	out := make(map[addr.Addr]struct{})
	for _, tr := range traces {
		for _, h := range tr.Hops {
			out[h.Addr] = struct{}{}
		}
	}
	return out
}
