package pager

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/fold"
	"hitlist6/internal/snapfmt"
	"hitlist6/internal/telemetry"
)

// Metrics is the pager's instrumentation, injectable so one registry
// registration can be shared across corpus reopens (telemetry
// registries reject re-registration with conflicting help text, and a
// daemon reopens its corpus on every full checkpoint).
type Metrics struct {
	Resident    *telemetry.Gauge
	Cold        *telemetry.Gauge
	Probes      *telemetry.Counter
	Skips       *telemetry.Counter
	Loads       *telemetry.Counter
	LoadSeconds *telemetry.Histogram
}

// NewMetrics registers the pager metric family on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Resident: reg.Gauge("corpus_chunks_resident",
			"Corpus chunks currently resident in RAM."),
		Cold: reg.Gauge("corpus_chunks_cold",
			"Corpus chunks currently cold on the tier file."),
		Probes: reg.Counter("corpus_filter_probes_total",
			"Per-chunk filter evaluations by point lookups."),
		Skips: reg.Counter("corpus_filter_skips_total",
			"Chunk loads avoided by the key fence or bloom filter."),
		Loads: reg.Counter("corpus_chunk_loads_total",
			"Cold chunk loads off the tier file."),
		LoadSeconds: reg.Histogram("corpus_chunk_load_seconds",
			"Latency of one cold chunk load (pread + CRC + install).",
			telemetry.DurationBuckets()),
	}
}

// Options configures Open.
type Options struct {
	// RAMBudget bounds the resident chunk payload bytes; 0 or negative
	// means unlimited (every loaded chunk stays). The budget is a high
	//-water mark for the cache: one chunk may transiently exceed it
	// during a load, and the most recently used chunk is never evicted.
	RAMBudget int64
	// Readahead is the chunk readahead window of streaming scans
	// (WriteCanonical, Restore, StreamAddrs); default 2.
	Readahead int
	// Metrics receives the pager's instrumentation; nil means unregistered
	// (a private throwaway registry).
	Metrics *Metrics
}

// dirEntry is one chunk's resident directory state: record count, key
// -range fence, bloom filter, and the file offset of its section
// header.
type dirEntry struct {
	n        uint32
	min, max addr.Addr
	bloom    []uint64
	off      int64
}

// Corpus is a tier file opened for reads: point lookups and range scans
// over the address records, with chunks paged in on demand and held
// under Options.RAMBudget. All methods are safe for concurrent use.
type Corpus struct {
	f         *os.File
	total     uint64
	addrN     int
	chunkRecs int
	iid       []byte
	dir       []dirEntry
	budget    int64
	readahead int
	met       *Metrics

	mu            sync.Mutex
	res           map[int][]byte
	lruPrev       []int32
	lruNext       []int32
	lruHead       int32
	lruTail       int32
	residentBytes int64
	inflight      map[int]*inflightLoad
	firstErr      error
}

type inflightLoad struct {
	done    chan struct{}
	payload []byte
	err     error
}

var tierCRC = crc32.MakeTable(crc32.Castagnoli)

// countReader counts the bytes its inner reader hands out; snapfmt
// reads exactly its own bytes, so the count IS the stream offset.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Open opens a tier file. Only the resident sections — meta, directory,
// IID bytes — are read; chunk offsets are derived from the directory's
// record counts, so opening a corpus far larger than RAM touches none
// of its chunk data.
func Open(path string, o Options) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c, err := open(f, o)
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func open(f *os.File, o Options) (*Corpus, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	fileSize := st.Size()

	cr := &countReader{r: bufio.NewReaderSize(io.NewSectionReader(f, 0, fileSize), 1<<20)}
	sr, err := snapfmt.NewReader(cr, tierMagic)
	if err != nil {
		return nil, fmt.Errorf("pager: %w", err)
	}
	if v := sr.Version(); v != tierVersion {
		return nil, fmt.Errorf("pager: tier version %d unsupported (have %d)", v, tierVersion)
	}

	if err := expectSection(sr, secTierMeta, tierMetaWire); err != nil {
		return nil, err
	}
	var meta [tierMetaWire]byte
	if _, err := io.ReadFull(sr, meta[:]); err != nil {
		return nil, fmt.Errorf("pager: tier meta: %w", err)
	}
	if err := sr.End(); err != nil {
		return nil, fmt.Errorf("pager: tier meta: %w", err)
	}
	total := binary.BigEndian.Uint64(meta[0:])
	addrN := binary.BigEndian.Uint64(meta[8:])
	chunkRecs := binary.BigEndian.Uint32(meta[16:])
	chunkCount := binary.BigEndian.Uint32(meta[20:])
	iidBytes := binary.BigEndian.Uint64(meta[24:])

	if chunkRecs == 0 {
		return nil, fmt.Errorf("pager: tier declares zero-record chunks")
	}
	// Every record costs at least tierRecWire bytes on the file; a meta
	// that declares more than the file could hold is damage, and bounding
	// here bounds every allocation below.
	if addrN > uint64(fileSize)/tierRecWire || iidBytes > uint64(fileSize) {
		return nil, fmt.Errorf("pager: tier declares %d records / %d IID bytes in a %d-byte file", addrN, iidBytes, fileSize)
	}
	wantChunks := (addrN + uint64(chunkRecs) - 1) / uint64(chunkRecs)
	if uint64(chunkCount) != wantChunks {
		return nil, fmt.Errorf("pager: tier declares %d chunks for %d records of %d", chunkCount, addrN, chunkRecs)
	}

	// Directory. Each entry's shape is validated as it streams in; the
	// fences must be internally ordered and disjoint ascending across
	// chunks, every chunk but the last exactly full (the global index ->
	// chunk mapping is pure arithmetic).
	gotID, _, err := sr.Next()
	if err != nil {
		return nil, fmt.Errorf("pager: tier directory: %w", err)
	}
	if gotID != secTierDir {
		return nil, fmt.Errorf("pager: tier section %d where directory expected", gotID)
	}
	dir := make([]dirEntry, 0, min(int(chunkCount), 1<<16))
	var fixed [tierDirFixed]byte
	var sum uint64
	for i := uint32(0); i < chunkCount; i++ {
		if _, err := io.ReadFull(sr, fixed[:]); err != nil {
			return nil, fmt.Errorf("pager: tier directory: %w", err)
		}
		var d dirEntry
		d.n = binary.BigEndian.Uint32(fixed[0:])
		copy(d.min[:], fixed[4:20])
		copy(d.max[:], fixed[20:36])
		words := binary.BigEndian.Uint32(fixed[36:])
		if d.n == 0 || d.n > chunkRecs || uint64(d.n) > addrN {
			return nil, fmt.Errorf("pager: tier chunk %d holds %d records of %d", i, d.n, chunkRecs)
		}
		if i < chunkCount-1 && d.n != chunkRecs {
			return nil, fmt.Errorf("pager: tier chunk %d is short (%d of %d) before the last", i, d.n, chunkRecs)
		}
		if d.max.Less(d.min) {
			return nil, fmt.Errorf("pager: tier chunk %d fence inverted", i)
		}
		if i > 0 && !dir[i-1].max.Less(d.min) {
			return nil, fmt.Errorf("pager: tier chunk %d fence overlaps its predecessor", i)
		}
		if words != bloomWords(int(d.n)) {
			return nil, fmt.Errorf("pager: tier chunk %d bloom is %d words for %d records", i, words, d.n)
		}
		d.bloom = make([]uint64, words)
		for w := range d.bloom {
			if _, err := io.ReadFull(sr, fixed[:8]); err != nil {
				return nil, fmt.Errorf("pager: tier directory: %w", err)
			}
			d.bloom[w] = binary.BigEndian.Uint64(fixed[:8])
		}
		sum += uint64(d.n)
		dir = append(dir, d)
	}
	if err := sr.End(); err != nil {
		return nil, fmt.Errorf("pager: tier directory: %w", err)
	}
	if sum != addrN {
		return nil, fmt.Errorf("pager: tier directory counts sum to %d, meta declares %d", sum, addrN)
	}

	if err := expectSection(sr, secTierIIDs, iidBytes); err != nil {
		return nil, err
	}
	iid := make([]byte, iidBytes)
	if _, err := io.ReadFull(sr, iid); err != nil {
		return nil, fmt.Errorf("pager: tier iids: %w", err)
	}
	if err := sr.End(); err != nil {
		return nil, fmt.Errorf("pager: tier iids: %w", err)
	}

	// Chunk offsets are arithmetic from here; the end marker must land
	// exactly at the end of the file.
	off := cr.n
	for i := range dir {
		dir[i].off = off
		off += tierSectionOverhead + chunkPayloadSize(dir[i].n)
	}
	if off+12 != fileSize {
		return nil, fmt.Errorf("pager: tier is %d bytes, chunks end at %d", fileSize, off)
	}

	met := o.Metrics
	if met == nil {
		met = NewMetrics(telemetry.NewRegistry())
	}
	readahead := o.Readahead
	if readahead <= 0 {
		readahead = 2
	}
	c := &Corpus{
		f:         f,
		total:     total,
		addrN:     int(addrN),
		chunkRecs: int(chunkRecs),
		iid:       iid,
		dir:       dir,
		budget:    o.RAMBudget,
		readahead: readahead,
		met:       met,
		res:       make(map[int][]byte),
		lruPrev:   make([]int32, len(dir)),
		lruNext:   make([]int32, len(dir)),
		lruHead:   -1,
		lruTail:   -1,
		inflight:  make(map[int]*inflightLoad),
	}
	c.setGauges()
	return c, nil
}

// expectSection mirrors the collector snapshot reader's fixed-order
// section check.
func expectSection(sr *snapfmt.Reader, id uint32, size uint64) error {
	gotID, gotSize, err := sr.Next()
	if err != nil {
		if err == io.EOF {
			return fmt.Errorf("pager: tier ends before section %d", id)
		}
		return fmt.Errorf("pager: tier section %d: %w", id, err)
	}
	if gotID != id {
		return fmt.Errorf("pager: tier section %d where %d expected", gotID, id)
	}
	if gotSize != size {
		return fmt.Errorf("pager: tier section %d is %d bytes, want %d", id, gotSize, size)
	}
	return nil
}

// Close releases the tier file. Outstanding readers must be done.
func (c *Corpus) Close() error { return c.f.Close() }

// NumAddrs returns the corpus's unique address count.
func (c *Corpus) NumAddrs() int { return c.addrN }

// TotalObservations returns the corpus's raw sighting count.
func (c *Corpus) TotalObservations() uint64 { return c.total }

// NumChunks returns the chunk count.
func (c *Corpus) NumChunks() int { return len(c.dir) }

// ResidentChunks returns how many chunks are currently resident.
func (c *Corpus) ResidentChunks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.res)
}

// ResidentBytes returns the resident chunk payload bytes.
func (c *Corpus) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.residentBytes
}

// setGauges publishes the residency split; callers hold c.mu (or, at
// construction, exclusive ownership).
func (c *Corpus) setGauges() {
	c.met.Resident.Set(int64(len(c.res)))
	c.met.Cold.Set(int64(len(c.dir) - len(c.res)))
}

// ---- LRU cache ----

func (c *Corpus) lruUnlink(i int) {
	p, n := c.lruPrev[i], c.lruNext[i]
	if p >= 0 {
		c.lruNext[p] = n
	} else {
		c.lruHead = n
	}
	if n >= 0 {
		c.lruPrev[n] = p
	} else {
		c.lruTail = p
	}
}

func (c *Corpus) lruPushFront(i int) {
	c.lruPrev[i] = -1
	c.lruNext[i] = c.lruHead
	if c.lruHead >= 0 {
		c.lruPrev[c.lruHead] = int32(i)
	}
	c.lruHead = int32(i)
	if c.lruTail < 0 {
		c.lruTail = int32(i)
	}
}

// evictLocked drops least-recently-used chunks until the budget holds,
// never evicting the last resident chunk. Eviction only drops the
// cache's reference — readers that already hold a payload slice keep it
// alive until they are done, so no load/evict race can hand out freed
// memory.
func (c *Corpus) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.residentBytes > c.budget && len(c.res) > 1 {
		victim := int(c.lruTail)
		c.lruUnlink(victim)
		c.residentBytes -= int64(len(c.res[victim]))
		delete(c.res, victim)
	}
}

// chunk returns chunk ci's payload, loading it off the tier file if
// cold. Concurrent requests for the same cold chunk coalesce into one
// read.
func (c *Corpus) chunk(ci int) ([]byte, error) {
	c.mu.Lock()
	if p, ok := c.res[ci]; ok {
		c.lruUnlink(ci)
		c.lruPushFront(ci)
		c.mu.Unlock()
		return p, nil
	}
	if fl, ok := c.inflight[ci]; ok {
		c.mu.Unlock()
		<-fl.done
		return fl.payload, fl.err
	}
	fl := &inflightLoad{done: make(chan struct{})}
	c.inflight[ci] = fl
	c.mu.Unlock()

	p, err := c.readChunk(ci)

	c.mu.Lock()
	delete(c.inflight, ci)
	if err == nil {
		if _, ok := c.res[ci]; !ok {
			c.res[ci] = p
			c.residentBytes += int64(len(p))
			c.lruPushFront(ci)
			c.evictLocked()
		}
		c.setGauges()
	}
	c.mu.Unlock()

	fl.payload, fl.err = p, err
	close(fl.done)
	return p, err
}

// readChunk preads and verifies one chunk section: header shape, then
// CRC-32C over the payload against the trailer. Damage is an error,
// never a partial payload.
func (c *Corpus) readChunk(ci int) ([]byte, error) {
	start := time.Now()
	d := &c.dir[ci]
	payload := chunkPayloadSize(d.n)
	buf := make([]byte, tierSectionOverhead+payload)
	if _, err := c.f.ReadAt(buf, d.off); err != nil {
		return nil, fmt.Errorf("pager: chunk %d: %w", ci, err)
	}
	if id := binary.BigEndian.Uint32(buf[0:]); id != secTierChunk {
		return nil, fmt.Errorf("pager: chunk %d: section id %d", ci, id)
	}
	if size := binary.BigEndian.Uint64(buf[4:]); size != uint64(payload) {
		return nil, fmt.Errorf("pager: chunk %d: declared %d bytes, directory says %d", ci, size, payload)
	}
	p := buf[12 : 12+payload]
	want := binary.BigEndian.Uint32(buf[12+payload:])
	if got := crc32.Checksum(p, tierCRC); got != want {
		return nil, fmt.Errorf("pager: chunk %d: crc %08x, want %08x", ci, got, want)
	}
	c.met.Loads.Inc()
	c.met.LoadSeconds.ObserveDuration(time.Since(start))
	return p, nil
}

// ---- point lookups ----

// Get returns the record for an address without loading any chunk the
// filters can rule out: the fence search names the only chunk whose key
// range could hold a, and its bloom filter then vetoes the load for
// almost every absent key.
func (c *Corpus) Get(a addr.Addr) (collector.AddrRecord, bool, error) {
	ci := sort.Search(len(c.dir), func(i int) bool { return !c.dir[i].max.Less(a) })
	c.met.Probes.Inc()
	if ci == len(c.dir) || a.Less(c.dir[ci].min) {
		c.met.Skips.Inc()
		return collector.AddrRecord{}, false, nil
	}
	if !bloomHas(c.dir[ci].bloom, a) {
		c.met.Skips.Inc()
		return collector.AddrRecord{}, false, nil
	}
	p, err := c.chunk(ci)
	if err != nil {
		return collector.AddrRecord{}, false, err
	}
	n := int(c.dir[ci].n)
	j := sort.Search(n, func(j int) bool {
		return bytes.Compare(p[j*tierRecWire:j*tierRecWire+16], a[:]) >= 0
	})
	if j == n || !bytes.Equal(p[j*tierRecWire:j*tierRecWire+16], a[:]) {
		return collector.AddrRecord{}, false, nil
	}
	_, rec := decodeRec(p[j*tierRecWire : (j+1)*tierRecWire])
	return rec, true, nil
}

// Contains reports whether the corpus holds a.
func (c *Corpus) Contains(a addr.Addr) (bool, error) {
	_, ok, err := c.Get(a)
	return ok, err
}

// ---- range scans ----

// AddrsRange iterates the records with canonical-order indices in
// [lo, hi), loading chunks through the cache. It satisfies the analysis
// layer's AddrSource contract like Collector.AddrsRange does — the
// iteration order here is canonical (sorted), which every fold is
// insensitive to.
func (c *Corpus) AddrsRange(lo, hi int, fn func(a addr.Addr, r collector.AddrRecord) bool) {
	if err := c.AddrsRangeErr(lo, hi, fn); err != nil {
		// The interface has no error channel: the scan ends short and the
		// error goes sticky for Err(). Callers needing per-call errors use
		// AddrsRangeErr.
		c.noteErr(err)
	}
}

// noteErr records the first I/O or damage error an errorless interface
// path swallowed.
func (c *Corpus) noteErr(err error) {
	c.mu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.mu.Unlock()
}

// Err returns the first error an AddrsRange scan swallowed, if any.
// Fold pipelines over the errorless AddrSource interface check it once
// at the end instead of per record.
func (c *Corpus) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

// AddrsRangeErr is AddrsRange with chunk-load errors surfaced.
func (c *Corpus) AddrsRangeErr(lo, hi int, fn func(a addr.Addr, r collector.AddrRecord) bool) error {
	if lo < 0 {
		lo = 0
	}
	if hi > c.addrN {
		hi = c.addrN
	}
	for g := lo; g < hi; {
		ci := g / c.chunkRecs
		p, err := c.chunk(ci)
		if err != nil {
			return err
		}
		base := ci * c.chunkRecs
		end := min(hi, base+int(c.dir[ci].n))
		for ; g < end; g++ {
			j := g - base
			a, rec := decodeRec(p[j*tierRecWire : (j+1)*tierRecWire])
			if !fn(a, rec) {
				return nil
			}
		}
	}
	return nil
}

var errStopScan = fmt.Errorf("pager: scan stopped")

// StreamAddrs walks every record in canonical order with bounded chunk
// readahead, bypassing the LRU cache: a full scan must not evict the
// working set, and its memory high-water mark is readahead+1 chunks
// regardless of corpus size.
func (c *Corpus) StreamAddrs(fn func(a addr.Addr, r collector.AddrRecord) bool) error {
	err := fold.Stream(len(c.dir), c.readahead,
		func(ci int) ([]byte, error) {
			c.mu.Lock()
			p, ok := c.res[ci]
			c.mu.Unlock()
			if ok {
				return p, nil
			}
			return c.readChunk(ci)
		},
		func(ci int, p []byte) error {
			for j := 0; j < int(c.dir[ci].n); j++ {
				a, rec := decodeRec(p[j*tierRecWire : (j+1)*tierRecWire])
				if !fn(a, rec) {
					return errStopScan
				}
			}
			return nil
		})
	if err == errStopScan {
		return nil
	}
	return err
}

// ---- canonical encoding ----

// WriteCanonical streams the corpus's canonical encoding: byte-for-byte
// what collector.WriteCanonical produces for the same observations,
// whether the chunks are fully resident, partially resident or entirely
// cold — the address half re-expands off the chunk walk, the IID half
// is the tier file's resident bytes verbatim.
func (c *Corpus) WriteCanonical(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		bw.Write(scratch[:])
	}
	putU64(c.total)
	putU64(uint64(c.addrN))
	err := c.StreamAddrs(func(a addr.Addr, r collector.AddrRecord) bool {
		bw.Write(a[:])
		putU64(uint64(r.First))
		putU64(uint64(r.Last))
		putU64(uint64(r.Count))
		putU64(uint64(r.Servers))
		return true
	})
	if err != nil {
		return err
	}
	if _, err := bw.Write(c.iid); err != nil {
		return err
	}
	return bw.Flush()
}

// Checksum returns the SHA-256 of the canonical encoding — comparable
// directly against collector.Checksum. The error surfaces chunk damage
// (the collector-side method has no I/O to fail).
func (c *Corpus) Checksum() ([32]byte, error) {
	h := sha256.New()
	var out [32]byte
	if err := c.WriteCanonical(h); err != nil {
		return out, err
	}
	copy(out[:], h.Sum(nil))
	return out, nil
}

// ---- full restore ----

// Restore rebuilds a live Collector from the tier: the full-fidelity
// path for analyses that need more than address scans (IID views, span
// chains, merging). Memory returns to O(corpus); the streaming walk
// keeps the rebuild itself at readahead+1 chunks over the collector's
// own footprint.
func (c *Corpus) Restore() (*collector.Collector, error) {
	b := collector.NewBuilder()
	var addErr error
	err := c.StreamAddrs(func(a addr.Addr, r collector.AddrRecord) bool {
		addErr = b.AddAddr(a, r)
		return addErr == nil
	})
	if err != nil {
		return nil, err
	}
	if addErr != nil {
		return nil, addErr
	}
	if err := parseCanonicalIIDs(c.iid, b); err != nil {
		return nil, err
	}
	return b.Finish(c.total)
}

// parseCanonicalIIDs feeds the canonical IID encoding into a builder.
// The bytes are CRC-covered on the file, but the parse still treats
// every length and count as hostile: damage is an error, never a panic
// or an over-allocation.
func parseCanonicalIIDs(b []byte, bld *collector.Builder) error {
	u64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	count, ok := u64()
	if !ok || count > uint64(len(b))/32 {
		return fmt.Errorf("pager: tier IID section declares %d records in %d bytes", count, len(b))
	}
	var spans []collector.SpanWindow
	for i := uint64(0); i < count; i++ {
		key, ok1 := u64()
		first, ok2 := u64()
		last, ok3 := u64()
		cnt, ok4 := u64()
		sn, ok5 := u64()
		if !(ok1 && ok2 && ok3 && ok4 && ok5) {
			return fmt.Errorf("pager: tier IID section truncated at record %d", i)
		}
		if cnt > uint64(^uint32(0)) {
			return fmt.Errorf("pager: tier IID record %d count %d overflows", i, cnt)
		}
		spans = spans[:0]
		if sn != 0xffffffffffffffff {
			if sn > uint64(len(b))/24 {
				return fmt.Errorf("pager: tier IID record %d declares %d spans in %d bytes", i, sn, len(b))
			}
			for s := uint64(0); s < sn; s++ {
				p64, okA := u64()
				sf, okB := u64()
				sl, okC := u64()
				if !(okA && okB && okC) {
					return fmt.Errorf("pager: tier IID record %d span truncated", i)
				}
				spans = append(spans, collector.SpanWindow{
					P64: addr.Prefix64(p64), First: int64(sf), Last: int64(sl),
				})
			}
		}
		if err := bld.AddIID(addr.IID(key), int64(first), int64(last), uint32(cnt), spans); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("pager: tier IID section carries %d trailing bytes", len(b))
	}
	return nil
}
