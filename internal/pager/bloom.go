package pager

import "hitlist6/internal/addr"

// Per-chunk bloom filters: ~10 bits per key, 4 probes by double
// hashing, which puts the false-positive rate around 1–2% — a cold
// point lookup for an absent key loads no chunk ~98% of the time, and
// the whole directory's filters cost ~1.25 bytes per corpus address.
const bloomK = 4

// bloomWords returns the filter size for n keys in 64-bit words: the
// next power of two of 10n bits, at least 64. Power-of-two sizing turns
// the probe modulo into a mask. Pure arithmetic — the tier reader uses
// it to validate a directory's declared sizes BEFORE allocating, so a
// hostile record count cannot drive an allocation.
func bloomWords(n int) uint32 {
	bits := uint64(64)
	for bits < uint64(n)*10 {
		bits *= 2
	}
	return uint32(bits / 64)
}

// newBloom allocates a filter sized for n keys.
func newBloom(n int) []uint64 {
	return make([]uint64, bloomWords(n))
}

// bloomMix is SplitMix64's finalizer: the independent second hash
// stream for double hashing.
func bloomMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func bloomAdd(f []uint64, a addr.Addr) {
	h1 := a.Hash64()
	h2 := bloomMix(h1) | 1
	mask := uint64(len(f))*64 - 1
	for i := 0; i < bloomK; i++ {
		bit := (h1 + uint64(i)*h2) & mask
		f[bit>>6] |= 1 << (bit & 63)
	}
}

func bloomHas(f []uint64, a addr.Addr) bool {
	if len(f) == 0 {
		return false
	}
	h1 := a.Hash64()
	h2 := bloomMix(h1) | 1
	mask := uint64(len(f))*64 - 1
	for i := 0; i < bloomK; i++ {
		bit := (h1 + uint64(i)*h2) & mask
		if f[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}
