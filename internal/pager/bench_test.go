package pager

import (
	"io"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// countWriter measures a snapshot's size without holding it.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// BenchmarkDeltaCheckpoint compares the delta checkpoint against the
// full snapshot it replaces on a lightly-dirtied corpus — the steady
// -state checkpoint workload. SetBytes carries the written size, so the
// MB/s column is checkpoint throughput and the delta/full ns ratio is
// the headline win.
func BenchmarkDeltaCheckpoint(b *testing.B) {
	build := func() *collector.Collector {
		c := collector.New()
		feedEvents(c, 0, 200000)
		c.MarkCheckpointedFull()
		// Re-observe a small slice: the light dirtying a checkpoint
		// interval accumulates.
		feedEvents(c, 1000, 2000)
		return c
	}
	b.Run("mode=delta", func(b *testing.B) {
		c := build()
		var w countWriter
		if err := c.SnapshotDelta(&w); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(w.n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.SnapshotDelta(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=full", func(b *testing.B) {
		c := build()
		var w countWriter
		if err := c.Snapshot(&w); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(w.n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Snapshot(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdContains measures point lookups against an effectively
// all-cold corpus (budget = one chunk): the miss case is the filter
// fast path — fence search plus bloom probes, no I/O — and the hit case
// pays a full cold chunk load, the honest worst-case probe.
func BenchmarkColdContains(b *testing.B) {
	c := collector.New()
	feedEvents(c, 0, 200000)
	path := writeTierFile(b, c)

	var present []addr.Addr
	c.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		present = append(present, a)
		return true
	})
	var absent []addr.Addr
	for i := 0; len(absent) < 4096; i++ {
		a := present[int(tmix(uint64(i))%uint64(len(present)))]
		a[15] ^= byte(tmix(uint64(i)+7)) | 1
		if _, ok := c.Get(a); !ok {
			absent = append(absent, a)
		}
	}

	b.Run("filter=miss", func(b *testing.B) {
		pc := openOrDie(b, path, Options{RAMBudget: chunkBytes})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := pc.Contains(absent[i&4095])
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				b.Fatal("absent key reported present")
			}
		}
	})
	b.Run("filter=hit", func(b *testing.B) {
		pc := openOrDie(b, path, Options{RAMBudget: chunkBytes})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := present[int(tmix(uint64(i))%uint64(len(present)))]
			ok, err := pc.Contains(a)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("present key reported absent")
			}
		}
	})
}

// BenchmarkStreamingReport measures the streaming fold rate off an all
// -cold corpus: every address record walked in canonical order with
// bounded readahead, the access pattern Report() and the figure folds
// use when the corpus does not fit the budget.
func BenchmarkStreamingReport(b *testing.B) {
	c := collector.New()
	feedEvents(c, 0, 200000)
	path := writeTierFile(b, c)
	pc := openOrDie(b, path, Options{RAMBudget: chunkBytes})
	n := pc.NumAddrs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var obs uint64
		err := pc.StreamAddrs(func(_ addr.Addr, r collector.AddrRecord) bool {
			obs += uint64(r.Count)
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if obs != pc.TotalObservations() {
			b.Fatalf("fold saw %d observations of %d", obs, pc.TotalObservations())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "addrs/sec")
}
