package pager

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/telemetry"
)

// tmix is SplitMix64 over a fixed stream: the test's deterministic
// entropy, independent of the bloom filter's mixer.
func tmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// genEvent is a pure function of the event index: ~97 /64 prefixes
// crossed with ~700 shared IIDs (promoted, multi-span) plus a stream of
// one-off IIDs (singletons), ascending timestamps, 8 servers.
func genEvent(i int) (addr.Addr, int64, int) {
	h := tmix(uint64(i))
	hi := uint64(0x20010db8)<<32 | (h%97)<<4
	var lo uint64
	if h%11 == 0 {
		lo = tmix(uint64(i) ^ 0xdeadbeef) // one-off IID
	} else {
		lo = tmix((h >> 7) % 701) // shared IID pool
	}
	if lo%5 == 0 {
		lo = lo&^(uint64(0xffff)<<24) | uint64(0xfffe)<<24 // EUI-64 shape
	}
	return addr.FromParts(hi, lo), int64(1_600_000_000 + i*13), int(h % 8)
}

func feedEvents(c *collector.Collector, lo, hi int) {
	for i := lo; i < hi; i++ {
		a, ts, srv := genEvent(i)
		c.ObserveUnix(a, ts, srv)
	}
}

func buildCorpus(tb testing.TB, events int) *collector.Collector {
	tb.Helper()
	c := collector.New()
	feedEvents(c, 0, events)
	return c
}

func writeTierFile(tb testing.TB, c *collector.Collector) string {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "corpus.tier")
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	if err := WriteTier(c, f); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
	return path
}

func openOrDie(tb testing.TB, path string, o Options) *Corpus {
	tb.Helper()
	if o.Metrics == nil {
		o.Metrics = NewMetrics(telemetry.NewRegistry())
	}
	pc, err := Open(path, o)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { pc.Close() })
	return pc
}

const chunkBytes = int64(TierChunkRecs) * tierRecWire

func TestTierRoundTrip(t *testing.T) {
	c := buildCorpus(t, 30000)
	path := writeTierFile(t, c)
	pc := openOrDie(t, path, Options{})

	if pc.NumAddrs() != c.NumAddrs() {
		t.Fatalf("tier holds %d addrs, collector %d", pc.NumAddrs(), c.NumAddrs())
	}
	if pc.TotalObservations() != c.TotalObservations() {
		t.Fatalf("tier total %d, collector %d", pc.TotalObservations(), c.TotalObservations())
	}
	if pc.NumChunks() != (c.NumAddrs()+TierChunkRecs-1)/TierChunkRecs {
		t.Fatalf("tier cut %d chunks for %d addrs", pc.NumChunks(), c.NumAddrs())
	}
	sum, err := pc.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if sum != c.Checksum() {
		t.Fatalf("tier checksum diverges from collector")
	}

	// Every record, both point-looked-up and range-scanned, must match.
	scanned := 0
	c.AddrsCanonical(func(a addr.Addr, want collector.AddrRecord) bool {
		got, ok, err := pc.Get(a)
		if err != nil {
			t.Fatalf("Get(%v): %v", a, err)
		}
		if !ok || got != want {
			t.Fatalf("Get(%v) = %+v, %v; want %+v", a, got, ok, want)
		}
		scanned++
		return true
	})
	if scanned != c.NumAddrs() {
		t.Fatalf("scanned %d of %d", scanned, c.NumAddrs())
	}

	for i := 0; i < 2000; i++ {
		a := addr.FromParts(0x30010db8<<32|tmix(uint64(i))%97<<4, tmix(uint64(i)+1))
		if ok, err := pc.Contains(a); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("tier claims to hold absent %v", a)
		}
	}
	if err := pc.Err(); err != nil {
		t.Fatalf("sticky error after clean reads: %v", err)
	}
}

func TestTierEmptyCorpus(t *testing.T) {
	c := collector.New()
	path := writeTierFile(t, c)
	pc := openOrDie(t, path, Options{})
	if pc.NumAddrs() != 0 || pc.NumChunks() != 0 {
		t.Fatalf("empty tier reports %d addrs, %d chunks", pc.NumAddrs(), pc.NumChunks())
	}
	if ok, err := pc.Contains(addr.FromParts(1, 2)); err != nil || ok {
		t.Fatalf("empty tier Contains = %v, %v", ok, err)
	}
	sum, err := pc.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if sum != c.Checksum() {
		t.Fatalf("empty tier checksum diverges")
	}
}

// TestTierEquivalenceAcrossBudgets is the tentpole acceptance bar: the
// canonical encoding must be byte-identical whether the corpus is fully
// resident, budget-constrained, or effectively all-cold — and a full
// Restore must reproduce the original collector exactly.
func TestTierEquivalenceAcrossBudgets(t *testing.T) {
	c := buildCorpus(t, 30000)
	want := c.Checksum()
	path := writeTierFile(t, c)

	budgets := map[string]int64{
		"resident": 0,
		"half":     3 * chunkBytes,
		"cold":     chunkBytes,
	}
	for name, budget := range budgets {
		t.Run(name, func(t *testing.T) {
			pc := openOrDie(t, path, Options{RAMBudget: budget})
			sum, err := pc.Checksum()
			if err != nil {
				t.Fatal(err)
			}
			if sum != want {
				t.Fatalf("checksum diverges at budget %d", budget)
			}
			// Checksum twice: the second pass may find some chunks resident.
			again, err := pc.Checksum()
			if err != nil {
				t.Fatal(err)
			}
			if again != want {
				t.Fatalf("second checksum diverges at budget %d", budget)
			}

			restored, err := pc.Restore()
			if err != nil {
				t.Fatal(err)
			}
			if restored.Checksum() != want {
				t.Fatalf("restored collector diverges at budget %d", budget)
			}
			if restored.NumAddrs() != c.NumAddrs() || restored.NumIIDs() != c.NumIIDs() {
				t.Fatalf("restored counts %d/%d, want %d/%d",
					restored.NumAddrs(), restored.NumIIDs(), c.NumAddrs(), c.NumIIDs())
			}
			// The restored collector must be live: it accepts further
			// observations and snapshots cleanly.
			feedEvents(restored, 30000, 31000)
			live := collector.New()
			feedEvents(live, 0, 31000)
			if restored.Checksum() != live.Checksum() {
				t.Fatalf("restored collector diverges after further observations")
			}
		})
	}
}

func TestTierBudgetHolds(t *testing.T) {
	c := buildCorpus(t, 30000)
	path := writeTierFile(t, c)
	met := NewMetrics(telemetry.NewRegistry())
	budget := 2 * chunkBytes
	pc := openOrDie(t, path, Options{RAMBudget: budget, Metrics: met})

	checkBudget := func(stage string) {
		t.Helper()
		if rb := pc.ResidentBytes(); rb > budget {
			t.Fatalf("%s: %d resident bytes over budget %d", stage, rb, budget)
		}
		if met.Resident.Value() != int64(pc.ResidentChunks()) {
			t.Fatalf("%s: resident gauge %d, cache holds %d", stage, met.Resident.Value(), pc.ResidentChunks())
		}
		if met.Resident.Value()+met.Cold.Value() != int64(pc.NumChunks()) {
			t.Fatalf("%s: gauges sum to %d of %d chunks", stage,
				met.Resident.Value()+met.Cold.Value(), pc.NumChunks())
		}
	}
	checkBudget("open")

	// Point lookups across the whole key space touch every chunk.
	i := 0
	c.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		if i%37 == 0 {
			if _, ok, err := pc.Get(a); err != nil || !ok {
				t.Fatalf("Get: %v, %v", ok, err)
			}
		}
		i++
		return true
	})
	checkBudget("gets")
	if int64(met.Loads.Value()) < int64(pc.NumChunks()) {
		t.Fatalf("only %d loads across %d chunks", met.Loads.Value(), pc.NumChunks())
	}
	if met.LoadSeconds.Count() != met.Loads.Value() {
		t.Fatalf("histogram saw %d loads, counter %d", met.LoadSeconds.Count(), met.Loads.Value())
	}

	// Cached range scans page chunks through the same budget.
	n := 0
	if err := pc.AddrsRangeErr(0, pc.NumAddrs(), func(addr.Addr, collector.AddrRecord) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != pc.NumAddrs() {
		t.Fatalf("range scan saw %d of %d", n, pc.NumAddrs())
	}
	checkBudget("scan")

	// Streaming scans bypass the cache entirely: residency must not grow.
	before := pc.ResidentChunks()
	if err := pc.StreamAddrs(func(addr.Addr, collector.AddrRecord) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if after := pc.ResidentChunks(); after != before {
		t.Fatalf("streaming scan changed residency %d -> %d", before, after)
	}
	checkBudget("stream")
}

// TestTierFilterSkips is the satellite acceptance bar: point probes for
// absent keys inside the corpus's key range must skip >= 90% of chunk
// loads via the fence + bloom filters.
func TestTierFilterSkips(t *testing.T) {
	c := buildCorpus(t, 30000)
	path := writeTierFile(t, c)
	met := NewMetrics(telemetry.NewRegistry())
	pc := openOrDie(t, path, Options{RAMBudget: chunkBytes, Metrics: met})

	// Absent keys shaped like present ones: take a real address and
	// perturb its low bits, discarding accidental hits, so most probes
	// land inside some chunk's fence and only the bloom can veto them.
	var present []addr.Addr
	c.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		present = append(present, a)
		return true
	})
	probes := 0
	for i := 0; probes < 5000; i++ {
		a := present[int(tmix(uint64(i))%uint64(len(present)))]
		a[15] ^= byte(tmix(uint64(i)+7)) | 1
		if _, exists := c.Get(a); exists {
			continue
		}
		ok, err := pc.Contains(a)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("tier claims to hold absent %v", a)
		}
		probes++
	}
	p, s := met.Probes.Value(), met.Skips.Value()
	if p != uint64(probes) {
		t.Fatalf("probe counter %d, made %d probes", p, probes)
	}
	if rate := float64(s) / float64(p); rate < 0.9 {
		t.Fatalf("filters skipped %.1f%% of absent-key probes, want >= 90%%", rate*100)
	}
	// Skips avoid loads: the only loads are bloom false positives.
	if met.Loads.Value() > uint64(probes)/10 {
		t.Fatalf("%d chunk loads for %d absent-key probes", met.Loads.Value(), probes)
	}
}

func TestTierConcurrentReads(t *testing.T) {
	c := buildCorpus(t, 30000)
	want := c.Checksum()
	path := writeTierFile(t, c)
	pc := openOrDie(t, path, Options{RAMBudget: 2 * chunkBytes})

	var present []addr.Addr
	c.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		present = append(present, a)
		return true
	})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				a := present[int(tmix(seed+uint64(i))%uint64(len(present)))]
				if _, ok, err := pc.Get(a); err != nil {
					errs <- err
					return
				} else if !ok {
					errs <- fmt.Errorf("lost %v under concurrency", a)
					return
				}
			}
		}(uint64(g) * 977)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum, err := pc.Checksum()
			if err != nil {
				errs <- err
				return
			}
			if sum != want {
				errs <- fmt.Errorf("checksum diverged under concurrency")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		if err := pc.AddrsRangeErr(0, pc.NumAddrs(), func(addr.Addr, collector.AddrRecord) bool {
			n++
			return true
		}); err != nil {
			errs <- err
			return
		}
		if n != pc.NumAddrs() {
			errs <- fmt.Errorf("concurrent scan saw %d of %d", n, pc.NumAddrs())
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func tierBytes(tb testing.TB, events int) []byte {
	tb.Helper()
	c := collector.New()
	feedEvents(c, 0, events)
	var buf bytes.Buffer
	if err := WriteTier(c, &buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestTierTruncationTorture: any truncation must fail at Open — chunk
// offsets are arithmetic against the file size, so a short file can
// never look whole.
func TestTierTruncationTorture(t *testing.T) {
	raw := tierBytes(t, 6000)
	path := filepath.Join(t.TempDir(), "cut.tier")
	step := len(raw)/101 + 1
	cuts := []int{0, 1, 7, 8, 11, 12, len(raw) - 13, len(raw) - 12, len(raw) - 1}
	for at := 0; at < len(raw); at += step {
		cuts = append(cuts, at)
	}
	for _, cut := range cuts {
		if cut < 0 || cut >= len(raw) {
			continue
		}
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		pc, err := Open(path, Options{})
		if err == nil {
			pc.Close()
			t.Fatalf("truncation at %d of %d opened cleanly", cut, len(raw))
		}
	}
}

// TestTierBitFlipTorture: a flipped bit must surface as an error at
// Open or on chunk load — or, if it lands in dead framing (the end
// marker), leave the canonical output byte-identical. Silent record
// corruption is the one forbidden outcome.
func TestTierBitFlipTorture(t *testing.T) {
	raw := tierBytes(t, 6000)
	orig := append([]byte(nil), raw...)
	path := filepath.Join(t.TempDir(), "flip.tier")

	pc0, want := openTierChecksum(t, path, orig)
	pc0.Close()

	step := len(raw)/197 + 1
	for off := 0; off < len(raw); off += step {
		for _, bit := range []uint{0, 7} {
			raw[off] ^= 1 << bit
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			pc, err := Open(path, Options{RAMBudget: chunkBytes})
			if err == nil {
				sum, cerr := pc.Checksum()
				if cerr == nil && sum != want {
					t.Fatalf("flip at %d bit %d silently changed the corpus", off, bit)
				}
				pc.Close()
			}
			raw[off] ^= 1 << bit
		}
	}
}

func openTierChecksum(tb testing.TB, path string, raw []byte) (*Corpus, [32]byte) {
	tb.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		tb.Fatal(err)
	}
	pc, err := Open(path, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	sum, err := pc.Checksum()
	if err != nil {
		tb.Fatal(err)
	}
	return pc, sum
}
