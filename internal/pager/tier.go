// Package pager implements the tiered corpus: a sealed collector
// serialized as fixed-size canonical-order chunks that can live
// resident in RAM or cold on the snapshot file, paged in on demand
// under a configurable budget. The tier file "h6tier01" is a snapfmt
// stream:
//
//	meta      — total, address count, chunk geometry, IID byte length
//	directory — per chunk: record count, key-range fence, bloom filter
//	iids      — the canonical IID encoding, verbatim (resident tier)
//	chunk*    — per chunk: the address records in canonical order
//	end
//
// Address records dominate the corpus (the IID tier is a small
// fraction), so only chunks are paged; the directory and IID bytes stay
// resident. Chunk payload offsets are not stored — they are arithmetic
// over the directory's record counts, so Open reads only the resident
// sections and never touches chunk data. Each chunk section carries its
// own CRC, verified on every cold load.
//
//lint:durable-path the tier file is the cold half of the corpus
package pager

import (
	"bytes"
	"encoding/binary"
	"io"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/snapfmt"
)

const (
	tierMagic   = "h6tier01"
	tierVersion = 1

	secTierMeta  = 1
	secTierDir   = 2
	secTierIIDs  = 3
	secTierChunk = 4

	// tierMetaWire: total u64, addrN u64, chunkRecs u32, chunkCount u32,
	// iidBytes u64.
	tierMetaWire = 32
	// tierRecWire is one address record on the wire: key[16], first u64,
	// last u64, count u32, servers u32 — the snapshot layout, reused so a
	// chunk is pure fixed-stride records.
	tierRecWire = 40
	// tierDirFixed is a directory entry minus its bloom words: n u32,
	// minKey[16], maxKey[16], bloomWords u32.
	tierDirFixed = 40

	// TierChunkRecs is the number of address records per chunk: small
	// enough that a cold point lookup reads ~160KB, large enough that a
	// streaming scan is a handful of sequential preads per MB.
	TierChunkRecs = 4096

	// tierSectionOverhead frames every chunk section: 12-byte header plus
	// 4-byte CRC.
	tierSectionOverhead = 16
)

// WriteTier serializes c as a tier file. Chunks are cut from the
// canonical address order, so chunk key ranges are disjoint and sorted
// — the property the directory fence search relies on. Two passes over
// the sorted corpus: the first builds the directory (counts, fences,
// blooms), the second streams the chunk payloads, so nothing but the
// directory is buffered.
func WriteTier(c *collector.Collector, w io.Writer) error {
	var iidBuf bytes.Buffer
	if err := c.WriteCanonicalIIDs(&iidBuf); err != nil {
		return err
	}
	n := c.NumAddrs()
	chunks := (n + TierChunkRecs - 1) / TierChunkRecs

	type dirEnt struct {
		n        uint32
		min, max addr.Addr
		bloom    []uint64
	}
	dir := make([]dirEnt, chunks)
	i := 0
	c.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		d := &dir[i/TierChunkRecs]
		if d.n == 0 {
			d.min = a
			left := n - (i / TierChunkRecs * TierChunkRecs)
			d.bloom = newBloom(min(left, TierChunkRecs))
		}
		d.max = a
		d.n++
		bloomAdd(d.bloom, a)
		i++
		return true
	})

	sw, err := snapfmt.NewWriter(w, tierMagic, tierVersion)
	if err != nil {
		return err
	}
	if err := sw.Begin(secTierMeta, tierMetaWire); err != nil {
		return err
	}
	var meta [tierMetaWire]byte
	binary.BigEndian.PutUint64(meta[0:], c.TotalObservations())
	binary.BigEndian.PutUint64(meta[8:], uint64(n))
	binary.BigEndian.PutUint32(meta[16:], TierChunkRecs)
	binary.BigEndian.PutUint32(meta[20:], uint32(chunks))
	binary.BigEndian.PutUint64(meta[24:], uint64(iidBuf.Len()))
	if _, err := sw.Write(meta[:]); err != nil {
		return err
	}
	if err := sw.End(); err != nil {
		return err
	}

	dirSize := uint64(0)
	for _, d := range dir {
		dirSize += tierDirFixed + uint64(len(d.bloom))*8
	}
	if err := sw.Begin(secTierDir, dirSize); err != nil {
		return err
	}
	var ds []byte
	for _, d := range dir {
		ds = ds[:0]
		ds = binary.BigEndian.AppendUint32(ds, d.n)
		ds = append(ds, d.min[:]...)
		ds = append(ds, d.max[:]...)
		ds = binary.BigEndian.AppendUint32(ds, uint32(len(d.bloom)))
		for _, word := range d.bloom {
			ds = binary.BigEndian.AppendUint64(ds, word)
		}
		if _, err := sw.Write(ds); err != nil {
			return err
		}
	}
	if err := sw.End(); err != nil {
		return err
	}

	if err := sw.Begin(secTierIIDs, uint64(iidBuf.Len())); err != nil {
		return err
	}
	if _, err := sw.Write(iidBuf.Bytes()); err != nil {
		return err
	}
	if err := sw.End(); err != nil {
		return err
	}

	// Second pass: the chunk payloads, one section per chunk.
	var (
		buf      []byte
		ci       = -1
		writeErr error
	)
	flushChunk := func() {
		if ci < 0 || writeErr != nil {
			return
		}
		if writeErr = sw.Begin(secTierChunk, uint64(len(buf))); writeErr != nil {
			return
		}
		if _, writeErr = sw.Write(buf); writeErr != nil {
			return
		}
		writeErr = sw.End()
	}
	i = 0
	c.AddrsCanonical(func(a addr.Addr, r collector.AddrRecord) bool {
		if i/TierChunkRecs != ci {
			flushChunk()
			ci = i / TierChunkRecs
			buf = buf[:0]
		}
		buf = append(buf, a[:]...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.First))
		buf = binary.BigEndian.AppendUint64(buf, uint64(r.Last))
		buf = binary.BigEndian.AppendUint32(buf, r.Count)
		buf = binary.BigEndian.AppendUint32(buf, r.Servers)
		i++
		return writeErr == nil
	})
	flushChunk()
	if writeErr != nil {
		return writeErr
	}
	return sw.Close()
}

// decodeRec unpacks one tierRecWire record.
func decodeRec(b []byte) (addr.Addr, collector.AddrRecord) {
	var a addr.Addr
	copy(a[:], b[0:16])
	return a, collector.AddrRecord{
		First:   int64(binary.BigEndian.Uint64(b[16:])),
		Last:    int64(binary.BigEndian.Uint64(b[24:])),
		Count:   binary.BigEndian.Uint32(b[32:]),
		Servers: binary.BigEndian.Uint32(b[36:]),
	}
}

// chunkPayloadSize returns the payload bytes of a chunk holding n
// records.
func chunkPayloadSize(n uint32) int64 { return int64(n) * tierRecWire }
