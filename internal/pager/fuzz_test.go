package pager

import (
	"os"
	"path/filepath"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// FuzzTier feeds arbitrary bytes to Open: the contract is an error or a
// corpus whose every read path is deterministic and panic-free —
// hostile metas must not drive allocations, offsets, or scans out of
// bounds. Run continuously with:
//
//	go test ./internal/pager -run '^$' -fuzz '^FuzzTier$' -fuzztime 30s
func FuzzTier(f *testing.F) {
	f.Add(tierBytes(f, 600))
	f.Add([]byte("h6tier01"))
	f.Add([]byte("h6tier01\x00\x00\x00\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.tier")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pc, err := Open(path, Options{RAMBudget: chunkBytes})
		if err != nil {
			return // rejected cleanly
		}
		defer pc.Close()
		// An accepted tier must read deterministically: two canonical
		// walks agree (or both fail — chunk CRCs are checked lazily), and
		// point lookups over whatever it holds never panic.
		sum1, err1 := pc.Checksum()
		sum2, err2 := pc.Checksum()
		if (err1 == nil) != (err2 == nil) || (err1 == nil && sum1 != sum2) {
			t.Fatalf("accepted tier reads nondeterministically: %v / %v", err1, err2)
		}
		pc.AddrsRange(0, pc.NumAddrs(), func(a addr.Addr, r collector.AddrRecord) bool {
			pc.Get(a)
			return true
		})
		if _, err := pc.Restore(); err != nil {
			return // hostile-but-framed content is allowed to fail restore
		}
	})
}
