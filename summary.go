package hitlist6

import (
	"encoding/json"

	"hitlist6/internal/addr"
	"hitlist6/internal/tracking"
)

// Summary is the machine-readable counterpart of Report: every headline
// statistic of the paper's evaluation in one JSON-serializable struct,
// for regression tracking across runs and seeds.
type Summary struct {
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	Days  int     `json:"days"`

	Queries     uint64 `json:"queries"`
	UniqueAddrs int    `json:"unique_addrs"`
	UniqueIIDs  int    `json:"unique_iids"`

	Table1 struct {
		NTPAddrs        int     `json:"ntp_addrs"`
		HitlistAddrs    int     `json:"hitlist_addrs"`
		CAIDAAddrs      int     `json:"caida_addrs"`
		NTPxHitlist     int     `json:"ntp_x_hitlist"`
		NTPxCAIDA       int     `json:"ntp_x_caida"`
		NTPAvgPer48     float64 `json:"ntp_avg_per_48"`
		HitlistAvgPer48 float64 `json:"hitlist_avg_per_48"`
		CAIDAAvgPer48   float64 `json:"caida_avg_per_48"`
	} `json:"table1"`

	Entropy struct {
		NTPMedian     float64 `json:"ntp_median"`
		HitlistMedian float64 `json:"hitlist_median"`
		CAIDAMedian   float64 `json:"caida_median"`
	} `json:"figure1"`

	Lifetimes struct {
		ObservedOnce      float64 `json:"observed_once"`
		WeekOrLonger      float64 `json:"week_or_longer"`
		MonthOrLonger     float64 `json:"month_or_longer"`
		SixMonthsOrLonger float64 `json:"six_months_or_longer"`
	} `json:"figure2a"`

	Backscan struct {
		ClientsProbed      int     `json:"clients_probed"`
		ClientResponseRate float64 `json:"client_response_rate"`
		RandomResponseRate float64 `json:"random_response_rate"`
		AliasedPrefixes    int     `json:"aliased_prefixes"`
	} `json:"section42"`

	Categories struct {
		NTPHighEntropy float64 `json:"ntp_high_entropy"`
		NTPMedEntropy  float64 `json:"ntp_medium_entropy"`
		HitlistLowByte float64 `json:"hitlist_low_byte"`
	} `json:"figure5"`

	Tracking struct {
		EUI64Addresses int                `json:"eui64_addresses"`
		UniqueMACs     int                `json:"unique_macs"`
		UnlistedShare  float64            `json:"unlisted_share"`
		Trackable      int                `json:"trackable"`
		ClassShares    map[string]float64 `json:"class_shares"`
	} `json:"section52"`

	Geolocation struct {
		WiredMACs       int            `json:"wired_macs"`
		OffsetsInferred int            `json:"offsets_inferred"`
		Located         int            `json:"located"`
		Countries       map[string]int `json:"countries"`
	} `json:"section53"`
}

// Summarize computes the Summary. The study must have Run.
func (s *Study) Summarize() (*Summary, error) {
	if err := s.requireDatasets(); err != nil {
		return nil, err
	}
	out := &Summary{
		Seed:        s.Config.Seed,
		Scale:       s.Config.Scale,
		Days:        s.Config.Days,
		Queries:     s.RunStats.Queries,
		UniqueAddrs: s.Collector.NumAddrs(),
		UniqueIIDs:  s.Collector.NumIIDs(),
	}

	t1, err := s.Table1()
	if err != nil {
		return nil, err
	}
	out.Table1.NTPAddrs = t1.NTP.Addrs
	out.Table1.HitlistAddrs = t1.Hitlist.Addrs
	out.Table1.CAIDAAddrs = t1.CAIDA.Addrs
	out.Table1.NTPxHitlist = t1.Hitlist.CommonAddrs
	out.Table1.NTPxCAIDA = t1.CAIDA.CommonAddrs
	out.Table1.NTPAvgPer48 = t1.NTP.AvgPer48
	out.Table1.HitlistAvgPer48 = t1.Hitlist.AvgPer48
	out.Table1.CAIDAAvgPer48 = t1.CAIDA.AvgPer48

	f1, err := s.Figure1()
	if err != nil {
		return nil, err
	}
	out.Entropy.NTPMedian = f1.NTP.Median()
	out.Entropy.HitlistMedian = f1.Hitlist.Median()
	out.Entropy.CAIDAMedian = f1.CAIDA.Median()

	f2a, err := s.Figure2a()
	if err != nil {
		return nil, err
	}
	out.Lifetimes.ObservedOnce = f2a.ObservedOnce
	out.Lifetimes.WeekOrLonger = f2a.WeekOrLonger
	out.Lifetimes.MonthOrLonger = f2a.MonthOrLonger
	out.Lifetimes.SixMonthsOrLonger = f2a.SixMonthsOrLonger

	bs, err := s.Backscan()
	if err != nil {
		return nil, err
	}
	out.Backscan.ClientsProbed = bs.ClientsProbed
	out.Backscan.ClientResponseRate = bs.ClientResponseRate()
	out.Backscan.RandomResponseRate = bs.RandomResponseRate()
	out.Backscan.AliasedPrefixes = len(bs.AliasedPrefixes)

	f5, err := s.Figure5()
	if err != nil {
		return nil, err
	}
	out.Categories.NTPHighEntropy = f5.NTP.Fractions[addr.CatHighEntropy]
	out.Categories.NTPMedEntropy = f5.NTP.Fractions[addr.CatMediumEntropy]
	out.Categories.HitlistLowByte = f5.Hitlist.Fractions[addr.CatLowByte]

	tr, err := s.Tracking()
	if err != nil {
		return nil, err
	}
	out.Tracking.EUI64Addresses = tr.EUI64Addresses
	out.Tracking.UniqueMACs = len(tr.MACs)
	out.Tracking.UnlistedShare = tr.UnlistedShare()
	out.Tracking.Trackable = tr.Trackable
	out.Tracking.ClassShares = make(map[string]float64)
	for c := tracking.MostlyStatic; c < tracking.NumClasses; c++ {
		out.Tracking.ClassShares[c.String()] = tr.ClassShare(c)
	}

	geo, err := s.Geolocation(0)
	if err != nil {
		return nil, err
	}
	out.Geolocation.WiredMACs = geo.WiredMACs
	out.Geolocation.OffsetsInferred = len(geo.Offsets)
	out.Geolocation.Located = len(geo.Located)
	out.Geolocation.Countries = geo.Countries

	return out, nil
}

// JSON renders the summary with indentation.
func (sm *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(sm, "", "  ")
}
